#include "eval/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/profiler.h"

namespace mace::eval {
namespace {

TEST(PcaTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Pca({}, 2).ok());
  EXPECT_FALSE(Pca({{1.0, 2.0}}, 1).ok());
  EXPECT_FALSE(Pca({{1.0}, {2.0}}, 2).ok());
  EXPECT_FALSE(Pca({{1.0, 2.0}, {3.0}}, 1).ok());
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the diagonal with small orthogonal noise.
  Rng rng(3);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.Gaussian(0.0, 3.0);
    const double noise = rng.Gaussian(0.0, 0.1);
    data.push_back({t + noise, t - noise});
  }
  auto projection = Pca(data, 2);
  ASSERT_TRUE(projection.ok());
  // First component captures nearly all variance.
  EXPECT_GT(projection->explained_variance[0],
            20.0 * projection->explained_variance[1]);
}

TEST(PcaTest, ExplainedVarianceIsDecreasing) {
  Rng rng(7);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.Gaussian(0, 3), rng.Gaussian(0, 2),
                    rng.Gaussian(0, 1)});
  }
  auto projection = Pca(data, 3);
  ASSERT_TRUE(projection.ok());
  EXPECT_GE(projection->explained_variance[0],
            projection->explained_variance[1]);
  EXPECT_GE(projection->explained_variance[1],
            projection->explained_variance[2]);
  // Should roughly match the generating variances 9, 4, 1.
  EXPECT_NEAR(projection->explained_variance[0], 9.0, 2.5);
  EXPECT_NEAR(projection->explained_variance[2], 1.0, 0.5);
}

TEST(PcaTest, ProjectionIsCentered) {
  std::vector<std::vector<double>> data = {
      {10.0, 0.0}, {12.0, 1.0}, {14.0, 2.0}, {16.0, 3.0}};
  auto projection = Pca(data, 1);
  ASSERT_TRUE(projection.ok());
  double sum = 0.0;
  for (const auto& p : projection->points) sum += p[0];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(PcaTest, SeparatedClustersStaySeparated) {
  Rng rng(11);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({rng.Gaussian(0, 0.2), rng.Gaussian(0, 0.2),
                    rng.Gaussian(0, 0.2)});
    data.push_back({rng.Gaussian(5, 0.2), rng.Gaussian(5, 0.2),
                    rng.Gaussian(5, 0.2)});
  }
  auto projection = Pca(data, 2);
  ASSERT_TRUE(projection.ok());
  // Even-index points (cluster A) and odd-index (cluster B) separate on PC1.
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < projection->points.size(); i += 2) {
    mean_a += projection->points[i][0];
    mean_b += projection->points[i + 1][0];
  }
  EXPECT_GT(std::fabs(mean_a - mean_b) / 50.0, 3.0);
}

TEST(ProfilerTest, StopWatchMeasuresElapsed) {
  StopWatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(double(i));
  EXPECT_GE(sink, 0.0);  // keep the loop observable
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1.0);
}

TEST(ProfilerTest, MemoryEstimateScalesWithParams) {
  const int64_t small = EstimateTrainingMemoryBytes(1000, 100);
  const int64_t large = EstimateTrainingMemoryBytes(2000, 100);
  EXPECT_EQ(large - small, 4 * 1000 * 8);
}

TEST(ProfilerTest, UsageTableContainsMethods) {
  ResourceUsage usage;
  usage.method = "MACE";
  usage.train_seconds = 1.5;
  usage.parameter_count = 1234;
  const std::string table = FormatUsageTable({usage});
  EXPECT_NE(table.find("MACE"), std::string::npos);
  EXPECT_NE(table.find("1234"), std::string::npos);
}

}  // namespace
}  // namespace mace::eval
