#include "ts/generator.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "fft/fft.h"
#include "ts/profiles.h"

namespace mace::ts {
namespace {

NormalPattern SimplePattern(int features = 2) {
  NormalPattern p;
  p.kind = WaveformKind::kSinusoid;
  p.period = 10.0;
  p.amplitude = 1.0;
  p.noise_stddev = 0.01;
  p.feature_weights.assign(features, 1.0);
  p.feature_lags.assign(features, 0.0);
  return p;
}

TEST(GeneratorTest, ShapeAndDeterminism) {
  Rng rng1(42), rng2(42);
  const NormalPattern p = SimplePattern();
  TimeSeries a = GenerateNormal(p, 100, 0, &rng1);
  TimeSeries b = GenerateNormal(p, 100, 0, &rng2);
  EXPECT_EQ(a.length(), 100u);
  EXPECT_EQ(a.num_features(), 2);
  for (size_t t = 0; t < a.length(); ++t) {
    EXPECT_DOUBLE_EQ(a.value(t, 0), b.value(t, 0));
  }
}

TEST(GeneratorTest, SinusoidHasDominantBaseAtFundamental) {
  Rng rng(7);
  NormalPattern p = SimplePattern(1);
  p.period = 8.0;  // 5 cycles in a 40-step window
  TimeSeries series = GenerateNormal(p, 40, 0, &rng);
  const std::vector<double> amps =
      fft::AmplitudeSpectrum(series.Feature(0));
  size_t argmax = 1;
  for (size_t j = 1; j < amps.size(); ++j) {
    if (amps[j] > amps[argmax]) argmax = j;
  }
  EXPECT_EQ(argmax, 5u);
}

TEST(GeneratorTest, PhaseContinuesAcrossT0) {
  Rng rng1(3), rng2(3);
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  TimeSeries full = GenerateNormal(p, 60, 0, &rng1);
  TimeSeries tail = GenerateNormal(p, 30, 30, &rng2);
  for (size_t t = 0; t < 30; ++t) {
    EXPECT_NEAR(tail.value(t, 0), full.value(t + 30, 0), 1e-12);
  }
}

TEST(GeneratorTest, FeatureLagsShiftPhases) {
  Rng rng(5);
  NormalPattern p = SimplePattern(2);
  p.noise_stddev = 0.0;
  p.feature_lags = {0.0, 2.5};  // quarter period
  TimeSeries series = GenerateNormal(p, 40, 0, &rng);
  // A quarter-period lag makes the features' instantaneous values differ.
  double diff = 0.0;
  for (size_t t = 0; t < 40; ++t) {
    diff += std::fabs(series.value(t, 0) - series.value(t, 1));
  }
  EXPECT_GT(diff / 40.0, 0.1);
}

TEST(GeneratorTest, AmplitudeModulationChangesEnvelope) {
  Rng rng(9);
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  p.am_depth = 0.5;
  p.am_period = 400.0;
  TimeSeries series = GenerateNormal(p, 400, 0, &rng);
  // RMS of first quarter vs. second quarter differ under modulation.
  auto rms = [&](size_t start) {
    double acc = 0.0;
    for (size_t t = start; t < start + 100; ++t) {
      acc += series.value(t, 0) * series.value(t, 0);
    }
    return std::sqrt(acc / 100.0);
  };
  EXPECT_GT(std::fabs(rms(0) - rms(200)), 0.05);
}

TEST(GeneratorTest, SecondaryDriverAddsSpectralLine) {
  Rng rng(11);
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  p.period = 8.0;             // base 5
  p.secondary_period = 4.0;   // base 10
  p.secondary_weights = {1.0};
  TimeSeries series = GenerateNormal(p, 40, 0, &rng);
  const std::vector<double> amps =
      fft::AmplitudeSpectrum(series.Feature(0));
  EXPECT_GT(amps[10], 0.5);
}

TEST(WaveformTest, NamesAreDistinct) {
  EXPECT_STREQ(WaveformKindName(WaveformKind::kSinusoid), "sinusoid");
  EXPECT_STREQ(WaveformKindName(WaveformKind::kSquare), "square");
  EXPECT_STREQ(WaveformKindName(WaveformKind::kSawtooth), "sawtooth");
  EXPECT_STREQ(WaveformKindName(WaveformKind::kSpikyPeriodic),
               "spiky_periodic");
  EXPECT_STREQ(AnomalyKindName(AnomalyKind::kLevelShift), "level_shift");
  EXPECT_TRUE(IsPointAnomaly(AnomalyKind::kPointSpike));
  EXPECT_FALSE(IsPointAnomaly(AnomalyKind::kNoiseBurst));
}

TEST(InjectionTest, ReachesTargetRatioApproximately) {
  Rng rng(13);
  const NormalPattern p = SimplePattern();
  TimeSeries series = GenerateNormal(p, 2000, 0, &rng);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.1;
  InjectAnomalies(config, p, &series, &rng);
  EXPECT_NEAR(series.AnomalyRatio(), 0.1, 0.03);
}

TEST(InjectionTest, LabelsMatchModifiedSteps) {
  Rng rng(17);
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  TimeSeries clean = GenerateNormal(p, 500, 0, &rng);
  TimeSeries injected = clean;
  Rng inject_rng(19);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.08;
  const auto events = InjectAnomalies(config, p, &injected, &inject_rng);
  EXPECT_FALSE(events.empty());
  for (size_t t = 0; t < injected.length(); ++t) {
    const bool modified =
        std::fabs(injected.value(t, 0) - clean.value(t, 0)) > 1e-9;
    if (modified) {
      EXPECT_TRUE(injected.is_anomaly(t)) << "unlabeled modification at " << t;
    }
  }
}

TEST(InjectionTest, EventsRespectMinimumGap) {
  Rng rng(23);
  const NormalPattern p = SimplePattern();
  TimeSeries series = GenerateNormal(p, 2000, 0, &rng);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.15;
  config.min_gap = 10;
  InjectAnomalies(config, p, &series, &rng);
  // Between any two anomalous runs there must be >= min_gap normal steps.
  size_t run_end = 0;
  bool in_run = false;
  for (size_t t = 0; t < series.length(); ++t) {
    if (series.is_anomaly(t)) {
      if (!in_run && run_end > 0) {
        EXPECT_GE(t - run_end, config.min_gap);
      }
      in_run = true;
    } else {
      if (in_run) run_end = t;
      in_run = false;
    }
  }
}

TEST(InjectionTest, ZeroRatioInjectsNothing) {
  Rng rng(29);
  const NormalPattern p = SimplePattern();
  TimeSeries series = GenerateNormal(p, 200, 0, &rng);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.0;
  const auto events = InjectAnomalies(config, p, &series, &rng);
  EXPECT_TRUE(events.empty());
  EXPECT_DOUBLE_EQ(series.AnomalyRatio(), 0.0);
}

TEST(InjectionTest, PointSpikesAreBoosted) {
  Rng rng(31);
  const NormalPattern p = SimplePattern();
  TimeSeries series = GenerateNormal(p, 3000, 0, &rng);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.05;
  config.point_fraction = 1.0;
  config.point_boost = 2.0;
  const auto events = InjectAnomalies(config, p, &series, &rng);
  for (const AnomalyEvent& e : events) {
    EXPECT_EQ(e.kind, AnomalyKind::kPointSpike);
    EXPECT_LE(e.length, 2u);
    EXPECT_GE(std::fabs(e.magnitude), config.min_magnitude * 2.0 - 1e-9);
  }
}

class ProfileTest : public ::testing::TestWithParam<DatasetProfile> {};

TEST_P(ProfileTest, GeneratedDatasetMatchesProfile) {
  DatasetProfile profile = GetParam();
  profile.num_services = 4;  // keep the test fast
  const Dataset dataset = GenerateDataset(profile);
  EXPECT_EQ(dataset.name, profile.name);
  ASSERT_EQ(dataset.services.size(), 4u);
  for (const ServiceData& svc : dataset.services) {
    EXPECT_EQ(svc.train.length(), profile.train_length);
    EXPECT_EQ(svc.test.length(), profile.test_length);
    EXPECT_EQ(svc.train.num_features(), profile.num_features);
    EXPECT_FALSE(svc.train.has_labels());
    EXPECT_TRUE(svc.test.has_labels());
    EXPECT_NEAR(svc.test.AnomalyRatio(), profile.anomaly_ratio,
                0.05 + 0.3 * profile.anomaly_ratio);
  }
}

TEST_P(ProfileTest, GenerationIsDeterministic) {
  DatasetProfile profile = GetParam();
  profile.num_services = 2;
  const Dataset a = GenerateDataset(profile);
  const Dataset b = GenerateDataset(profile);
  for (size_t s = 0; s < a.services.size(); ++s) {
    EXPECT_EQ(a.services[s].train.values(), b.services[s].train.values());
    EXPECT_EQ(a.services[s].test.labels(), b.services[s].test.labels());
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::ValuesIn(AllProfiles()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ProfilesTest, DiversityOrderingSmdMostDiverse) {
  // SMD services should spread across waveform kinds; J-D2 should collapse
  // to (nearly) one.
  auto count_kinds = [](const DatasetProfile& profile) {
    std::set<WaveformKind> kinds;
    for (int s = 0; s < 10; ++s) {
      Rng rng(profile.seed + 1000003ULL * static_cast<uint64_t>(s + 1));
      kinds.insert(SamplePattern(profile, s, &rng).kind);
    }
    return kinds.size();
  };
  EXPECT_GE(count_kinds(SmdProfile()), 3u);
  EXPECT_EQ(count_kinds(Jd2Profile()), 1u);
}

TEST(DriftTest, NoneMatchesGenerateNormalBitwise) {
  const NormalPattern p = SimplePattern();
  Rng rng1(9), rng2(9);
  const TimeSeries plain = GenerateNormal(p, 120, 0, &rng1);
  const TimeSeries drifted =
      GenerateDriftingNormal(p, 120, 0, DriftScenario{}, &rng2);
  ASSERT_EQ(plain.length(), drifted.length());
  for (size_t t = 0; t < plain.length(); ++t) {
    for (int f = 0; f < plain.num_features(); ++f) {
      EXPECT_EQ(plain.value(t, f), drifted.value(t, f));
    }
  }
}

TEST(DriftTest, PreOnsetPrefixMatchesNormalBitwise) {
  const NormalPattern p = SimplePattern();
  DriftScenario drift;
  drift.kind = DriftKind::kSeasonalityShift;
  drift.onset = 60;
  drift.ramp = 40;
  drift.magnitude = 0.5;
  Rng rng1(9), rng2(9);
  const TimeSeries plain = GenerateNormal(p, 200, 0, &rng1);
  const TimeSeries drifted = GenerateDriftingNormal(p, 200, 0, drift, &rng2);
  for (size_t t = 0; t <= drift.onset; ++t) {
    for (int f = 0; f < plain.num_features(); ++f) {
      EXPECT_EQ(plain.value(t, f), drifted.value(t, f)) << "step " << t;
    }
  }
  // ... and the drift really does change the tail.
  double max_diff = 0.0;
  for (size_t t = 150; t < 200; ++t) {
    max_diff = std::max(max_diff,
                        std::fabs(plain.value(t, 0) - drifted.value(t, 0)));
  }
  EXPECT_GT(max_diff, 0.1);
}

TEST(DriftTest, TrendDriftRampsTheLevel) {
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  DriftScenario drift;
  drift.kind = DriftKind::kTrendDrift;
  drift.onset = 100;
  drift.ramp = 100;
  drift.magnitude = 0.5;
  Rng rng(1);
  const TimeSeries series = GenerateDriftingNormal(p, 400, 0, drift, &rng);
  const auto mean_over = [&](size_t lo, size_t hi) {
    double sum = 0.0;
    for (size_t t = lo; t < hi; ++t) sum += series.value(t, 0);
    return sum / static_cast<double>(hi - lo);
  };
  EXPECT_NEAR(mean_over(0, 100), 0.0, 0.05);
  // One full ramp past the onset: offset = magnitude * amplitude. A
  // trend keeps growing, so two ramps in it has doubled.
  EXPECT_NEAR(mean_over(190, 210), 0.5, 0.1);
  EXPECT_NEAR(mean_over(290, 310), 1.0, 0.1);
}

TEST(DriftTest, AmplitudeDecayShrinksTheSeasonalSwing) {
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  DriftScenario drift;
  drift.kind = DriftKind::kAmplitudeDecay;
  drift.onset = 100;
  drift.ramp = 100;
  drift.magnitude = 0.6;
  Rng rng(1);
  const TimeSeries series = GenerateDriftingNormal(p, 400, 0, drift, &rng);
  const auto peak_over = [&](size_t lo, size_t hi) {
    double peak = 0.0;
    for (size_t t = lo; t < hi; ++t) {
      peak = std::max(peak, std::fabs(series.value(t, 0)));
    }
    return peak;
  };
  const double before = peak_over(0, 100);
  const double after = peak_over(300, 400);
  EXPECT_NEAR(after / before, 0.4, 0.05);  // 1 - magnitude
}

TEST(DriftTest, SeasonalityShiftIsPhaseContinuousAndStretches) {
  NormalPattern p = SimplePattern(1);
  p.noise_stddev = 0.0;
  DriftScenario drift;
  drift.kind = DriftKind::kSeasonalityShift;
  drift.onset = 200;
  drift.ramp = 100;
  drift.magnitude = 0.5;  // period 10 -> 15
  Rng rng(1);
  const TimeSeries series = GenerateDriftingNormal(p, 600, 0, drift, &rng);
  // Phase continuity: no step-to-step jump anywhere exceeds the steepest
  // slope of the undrifted waveform (with margin).
  double max_step = 0.0;
  for (size_t t = 1; t < series.length(); ++t) {
    max_step = std::max(
        max_step, std::fabs(series.value(t, 0) - series.value(t - 1, 0)));
  }
  EXPECT_LT(max_step, 2.0 * M_PI / p.period * 1.5);
  // Frequency migration: zero crossings thin out once the period
  // stretched from 10 to 15.
  const auto crossings = [&](size_t lo, size_t hi) {
    int count = 0;
    for (size_t t = lo + 1; t < hi; ++t) {
      if ((series.value(t, 0) >= 0.0) != (series.value(t - 1, 0) >= 0.0)) {
        ++count;
      }
    }
    return count;
  };
  const int head = crossings(0, 200);       // ~2 per 10 steps => ~40
  const int tail = crossings(400, 600);     // ~2 per 15 steps => ~27
  EXPECT_NEAR(head, 40, 2);
  EXPECT_NEAR(tail, 27, 3);
}

// Regression: fmod keeps the sign of its argument, so a feature lag
// larger than t0 used to push the burst clock negative and break the
// burst cadence across t = 0 (the bump fired one period early). The
// waveform must be exactly periodic across the sign change.
TEST(GeneratorTest, SpikyPeriodicStaysPeriodicAcrossNegativePhase) {
  Rng rng(41);
  NormalPattern p = SimplePattern(1);
  p.kind = WaveformKind::kSpikyPeriodic;
  // Period long enough that integer sampling lands inside the burst
  // (burst width is 8% of the period).
  p.period = 24.0;
  p.noise_stddev = 0.0;
  p.feature_lags = {5.0};  // clock = t - 5 < 0 for the first five steps
  const TimeSeries series = GenerateNormal(p, 120, 0, &rng);
  const auto period = static_cast<size_t>(p.period);
  for (size_t t = 0; t + period < series.length(); ++t) {
    EXPECT_NEAR(series.value(t, 0), series.value(t + period, 0), 1e-12)
        << "burst cadence broke at step " << t;
  }
  // The bursts really exist (the series is not a flat baseline).
  double peak = 0.0;
  for (size_t t = 0; t < series.length(); ++t) {
    peak = std::max(peak, series.value(t, 0));
  }
  EXPECT_GT(peak, 1.0);
}

// Regression: max_segment < min_segment used to underflow the size_t
// span and make UniformInt draw astronomically long events. The span now
// clamps to 1, so every segment event is exactly min_segment steps.
TEST(InjectionTest, InvertedSegmentBoundsClampToMinSegment) {
  Rng rng(43);
  const NormalPattern p = SimplePattern();
  TimeSeries series = GenerateNormal(p, 800, 0, &rng);
  AnomalyInjectionConfig config;
  config.anomaly_ratio = 0.05;
  config.point_fraction = 0.0;  // segment events only
  config.min_segment = 20;
  config.max_segment = 5;  // inverted on purpose
  const auto events = InjectAnomalies(config, p, &series, &rng);
  ASSERT_FALSE(events.empty());
  for (const AnomalyEvent& e : events) {
    EXPECT_LE(e.length, 20u) << AnomalyKindName(e.kind);
    EXPECT_GE(e.length, 1u);
  }
  EXPECT_GT(series.AnomalyRatio(), 0.0);
  EXPECT_LT(series.AnomalyRatio(), 0.2);
}

TEST(ChannelBreakTest, LabelsExactlyInsideBreaks) {
  Rng rng(47);
  NormalPattern p = SimplePattern(3);
  p.feature_lags = {0.0, 2.0, 4.0};
  ChannelBreakScenario scenario;
  scenario.start = 100;
  scenario.length = 40;
  const TimeSeries series =
      GenerateCorrelatedChannelBreak(p, 300, 0, {scenario}, &rng);
  ASSERT_EQ(series.length(), 300u);
  ASSERT_TRUE(series.has_labels());
  for (size_t t = 0; t < series.length(); ++t) {
    const bool inside = t >= 100 && t < 140;
    EXPECT_EQ(series.is_anomaly(t), inside) << "step " << t;
  }
}

// The defining property: inside the break the channels decohere (an
// anti-phase shift flips their correlation) while each marginal channel
// keeps its amplitude — the anomaly lives only in the cross-channel
// structure.
TEST(ChannelBreakTest, FlipsCorrelationButPreservesMarginals) {
  Rng rng(53);
  NormalPattern p = SimplePattern(2);
  p.period = 12.0;
  p.noise_stddev = 0.0;
  ChannelBreakScenario scenario;
  scenario.start = 120;
  scenario.length = 96;
  scenario.phase_shift = 0.5;  // anti-phase at full strength
  scenario.ramp = 4;
  const TimeSeries series =
      GenerateCorrelatedChannelBreak(p, 360, 0, {scenario}, &rng);

  const auto pearson = [&](size_t lo, size_t hi) {
    double mean0 = 0.0, mean1 = 0.0;
    const double n = static_cast<double>(hi - lo);
    for (size_t t = lo; t < hi; ++t) {
      mean0 += series.value(t, 0);
      mean1 += series.value(t, 1);
    }
    mean0 /= n;
    mean1 /= n;
    double cov = 0.0, var0 = 0.0, var1 = 0.0;
    for (size_t t = lo; t < hi; ++t) {
      const double a = series.value(t, 0) - mean0;
      const double b = series.value(t, 1) - mean1;
      cov += a * b;
      var0 += a * a;
      var1 += b * b;
    }
    return cov / std::sqrt(var0 * var1);
  };
  // Identical lag-free channels: locked in phase outside the break,
  // anti-phase in its full-strength interior.
  EXPECT_GT(pearson(0, 120), 0.99);
  EXPECT_LT(pearson(130, 200), -0.9);
  EXPECT_GT(pearson(240, 360), 0.99);

  // Marginal amplitude is preserved: the shifted channel's RMS inside
  // the break matches its RMS outside (a time shift, not an excursion).
  const auto rms = [&](int f, size_t lo, size_t hi) {
    double acc = 0.0;
    for (size_t t = lo; t < hi; ++t) {
      acc += series.value(t, f) * series.value(t, f);
    }
    return std::sqrt(acc / static_cast<double>(hi - lo));
  };
  EXPECT_NEAR(rms(1, 130, 202), rms(1, 0, 72), 0.1);
}

// With one channel there is nothing to decohere: values match
// GenerateNormal bitwise (same noise draw order) and only labels differ.
TEST(ChannelBreakTest, SingleChannelDegeneratesToGenerateNormal) {
  const NormalPattern p = SimplePattern(1);
  ChannelBreakScenario scenario;
  scenario.start = 40;
  scenario.length = 20;
  Rng rng1(59), rng2(59);
  const TimeSeries plain = GenerateNormal(p, 200, 7, &rng1);
  const TimeSeries broken =
      GenerateCorrelatedChannelBreak(p, 200, 7, {scenario}, &rng2);
  ASSERT_EQ(plain.length(), broken.length());
  for (size_t t = 0; t < plain.length(); ++t) {
    EXPECT_EQ(plain.value(t, 0), broken.value(t, 0)) << "step " << t;
  }
  EXPECT_TRUE(broken.has_labels());
  EXPECT_TRUE(broken.is_anomaly(50));
  EXPECT_FALSE(broken.is_anomaly(10));
}

TEST(ChannelBreakTest, GenerationIsDeterministic) {
  NormalPattern p = SimplePattern(4);
  p.feature_lags = {0.0, 1.0, 2.0, 3.0};
  ChannelBreakScenario scenario;
  scenario.start = 64;
  scenario.length = 32;
  Rng rng1(61), rng2(61);
  const TimeSeries a =
      GenerateCorrelatedChannelBreak(p, 256, 0, {scenario}, &rng1);
  const TimeSeries b =
      GenerateCorrelatedChannelBreak(p, 256, 0, {scenario}, &rng2);
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(ProfilesTest, ServiceGroupSplitsCorrectly) {
  DatasetProfile profile = SmdProfile();
  profile.num_services = 20;
  profile.train_length = 100;
  profile.test_length = 60;
  const Dataset dataset = GenerateDataset(profile);
  const auto group0 = ServiceGroup(dataset, 0);
  const auto group1 = ServiceGroup(dataset, 1);
  EXPECT_EQ(group0.size(), 10u);
  EXPECT_EQ(group1.size(), 10u);
  EXPECT_EQ(group0.front().name, dataset.services[0].name);
  EXPECT_EQ(group1.front().name, dataset.services[10].name);
}

}  // namespace
}  // namespace mace::ts
