// Property suite: MACE stays finite and functional across the whole
// ablation-flag matrix and a sweep of hyperparameter corners.

#include <cmath>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(31 + s);
    ts::NormalPattern pattern;
    pattern.kind =
        s == 0 ? ts::WaveformKind::kSinusoid : ts::WaveformKind::kSquare;
    pattern.period = s == 0 ? 10.0 : 8.0;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.7};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 280, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 120, 280, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

struct ConfigCase {
  std::string name;
  MaceConfig config;
};

std::vector<ConfigCase> MakeCases() {
  auto base = [] {
    MaceConfig c;
    c.epochs = 2;
    return c;
  };
  std::vector<ConfigCase> cases;
  {
    ConfigCase c{"defaults", base()};
    cases.push_back(c);
  }
  // Every ablation flag off, one at a time and all together.
  const char* names[] = {"no_ctx_dft", "no_dual_freq", "no_dual_time",
                         "no_freq_char", "no_pattern_extraction"};
  for (int i = 0; i < 5; ++i) {
    ConfigCase c{names[i], base()};
    if (i == 0) c.config.use_context_aware_dft = false;
    if (i == 1) c.config.use_dualistic_freq = false;
    if (i == 2) c.config.use_dualistic_time = false;
    if (i == 3) c.config.use_freq_characterization = false;
    if (i == 4) c.config.use_pattern_extraction = false;
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_ablations", base()};
    c.config.use_context_aware_dft = false;
    c.config.use_dualistic_freq = false;
    c.config.use_dualistic_time = false;
    c.config.use_freq_characterization = false;
    c.config.use_pattern_extraction = false;
    cases.push_back(c);
  }
  // Hyperparameter corners.
  {
    ConfigCase c{"gamma_high", base()};
    c.config.gamma_t = 13.0;
    c.config.gamma_f = 13.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"gamma_one", base()};
    c.config.gamma_t = 1.0;
    c.config.gamma_f = 1.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"few_bases", base()};
    c.config.num_bases = 4;
    c.config.freq_kernel = 2;
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_bases", base()};
    c.config.num_bases = 20;
    cases.push_back(c);
  }
  {
    ConfigCase c{"small_window", base()};
    c.config.window = 16;
    c.config.num_bases = 8;
    c.config.freq_kernel = 2;
    c.config.score_stride = 4;
    c.config.train_stride = 4;
    cases.push_back(c);
  }
  {
    ConfigCase c{"big_sigma", base()};
    c.config.sigma_t = 10.0;
    c.config.sigma_f = 10.0;
    cases.push_back(c);
  }
  return cases;
}

class ConfigMatrixTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigMatrixTest, FitScoreSaveLoadStayFinite) {
  const auto services = TinyWorkload();
  MaceDetector detector(GetParam().config);
  ASSERT_TRUE(detector.Fit(services).ok());
  for (double loss : detector.epoch_losses()) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  auto scores = detector.Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  for (double v : *scores) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  // Persistence must work for every configuration.
  const std::string path =
      ::testing::TempDir() + "/cfg_" + GetParam().name + ".mace";
  ASSERT_TRUE(detector.Save(path).ok());
  auto loaded = MaceDetector::Load(path);
  ASSERT_TRUE(loaded.ok());
  auto restored = loaded->Score(0, services[0].test);
  ASSERT_TRUE(restored.ok());
  for (size_t t = 0; t < scores->size(); ++t) {
    EXPECT_NEAR((*scores)[t], (*restored)[t], 1e-9);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigMatrixTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace mace::core
