// Cross-module integration tests: dataset generation -> unified training ->
// scoring -> evaluation, plus the paper's headline properties on a small
// workload (kept light so the suite stays fast).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/math_utils.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "fft/fft.h"
#include "fft/spectrum.h"
#include "ts/profiles.h"

namespace mace {
namespace {

ts::Dataset SmallDataset(ts::DatasetProfile profile, int services = 4) {
  profile.num_services = services;
  profile.train_length = 480;
  profile.test_length = 320;
  return ts::GenerateDataset(profile);
}

core::MaceConfig FastMace() {
  core::MaceConfig config;
  config.epochs = 3;
  return config;
}

TEST(IntegrationTest, UnifiedMaceOnDiverseServices) {
  const ts::Dataset dataset = SmallDataset(ts::SmdProfile());
  core::MaceDetector detector(FastMace());
  ASSERT_TRUE(detector.Fit(dataset.services).ok());
  std::vector<eval::PrMetrics> metrics;
  for (size_t s = 0; s < dataset.services.size(); ++s) {
    auto scores =
        detector.Score(static_cast<int>(s), dataset.services[s].test);
    ASSERT_TRUE(scores.ok());
    auto best = eval::BestF1Threshold(*scores,
                                      dataset.services[s].test.labels());
    ASSERT_TRUE(best.ok());
    metrics.push_back(best->metrics);
  }
  EXPECT_GT(eval::MacroAverage(metrics).f1, 0.6);
}

TEST(IntegrationTest, TransferToUnseenGroupKeepsWorking) {
  ts::DatasetProfile profile = ts::Jd2Profile();
  profile.num_services = 8;
  profile.train_length = 480;
  profile.test_length = 320;
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  std::vector<ts::ServiceData> train_group(dataset.services.begin(),
                                           dataset.services.begin() + 4);
  core::MaceDetector detector(FastMace());
  ASSERT_TRUE(detector.Fit(train_group).ok());
  std::vector<eval::PrMetrics> metrics;
  for (size_t s = 4; s < 8; ++s) {
    auto scores = detector.ScoreUnseen(dataset.services[s]);
    ASSERT_TRUE(scores.ok());
    auto best = eval::BestF1Threshold(*scores,
                                      dataset.services[s].test.labels());
    metrics.push_back(best->metrics);
  }
  EXPECT_GT(eval::MacroAverage(metrics).f1, 0.6);
}

TEST(IntegrationTest, AblationFullSpectrumDoesNotBeatContextAware) {
  // Theorem 2 / Corollary 1: the selected subset should do at least as
  // well as the vanilla full spectrum on diverse patterns.
  const ts::Dataset dataset = SmallDataset(ts::SmdProfile(), 4);
  auto f1_for = [&](bool context_aware) {
    core::MaceConfig config = FastMace();
    config.use_context_aware_dft = context_aware;
    core::MaceDetector detector(config);
    MACE_CHECK_OK(detector.Fit(dataset.services));
    std::vector<eval::PrMetrics> metrics;
    for (size_t s = 0; s < dataset.services.size(); ++s) {
      auto scores =
          detector.Score(static_cast<int>(s), dataset.services[s].test);
      auto best = eval::BestF1Threshold(*scores,
                                        dataset.services[s].test.labels());
      metrics.push_back(best->metrics);
    }
    return eval::MacroAverage(metrics).f1;
  };
  EXPECT_GE(f1_for(true) + 0.12, f1_for(false));
}

TEST(IntegrationTest, AnomalousSpectraHaveHigherVariance) {
  // The Table II premise on our datasets: anomalies raise spectrum
  // variance.
  const ts::Dataset dataset = SmallDataset(ts::Jd1Profile(), 4);
  std::vector<std::vector<double>> normal_spectra, anomalous_spectra;
  for (const ts::ServiceData& svc : dataset.services) {
    ts::StandardScaler scaler;
    scaler.Fit(svc.train);
    const ts::TimeSeries test = scaler.Transform(svc.test);
    for (size_t start = 0; start + 40 <= test.length(); start += 40) {
      bool anomalous = false;
      for (size_t t = start; t < start + 40; ++t) {
        anomalous |= test.is_anomaly(t);
      }
      for (int f = 0; f < test.num_features(); ++f) {
        std::vector<double> window(40);
        for (int t = 0; t < 40; ++t) {
          window[t] = test.value(start + t, f);
        }
        auto& bucket = anomalous ? anomalous_spectra : normal_spectra;
        bucket.push_back(fft::AmplitudeSpectrum(window));
      }
    }
  }
  ASSERT_FALSE(normal_spectra.empty());
  ASSERT_FALSE(anomalous_spectra.empty());
  const auto normal = fft::PooledAmplitudeMoments(normal_spectra);
  const auto anomalous = fft::PooledAmplitudeMoments(anomalous_spectra);
  EXPECT_GT(anomalous.variance, normal.variance);
  EXPECT_GT(anomalous.mean, normal.mean);  // Table III premise
}

TEST(IntegrationTest, PotThresholdYieldsReasonablePrecision) {
  // End-to-end with the production thresholding (POT) instead of best-F1.
  const ts::Dataset dataset = SmallDataset(ts::Jd2Profile(), 3);
  core::MaceDetector detector(FastMace());
  ASSERT_TRUE(detector.Fit(dataset.services).ok());
  auto scores = detector.Score(0, dataset.services[0].test);
  ASSERT_TRUE(scores.ok());
  auto threshold = PotThreshold(*scores, /*risk=*/0.05, 0.8);
  ASSERT_TRUE(threshold.ok());
  const eval::PrMetrics m = eval::EvaluateAtThreshold(
      *scores, dataset.services[0].test.labels(), *threshold);
  EXPECT_GT(m.f1, 0.3);
}

TEST(IntegrationTest, SubsetKlGapMatchesCorollary1) {
  // Corollary 1: when the kept mass of the normal spectrum exceeds k/n,
  // the anomaly reconstruction error exceeds the normal one.
  const ts::Dataset dataset = SmallDataset(ts::SmdProfile(), 2);
  const ts::ServiceData& svc = dataset.services[0];
  ts::StandardScaler scaler;
  scaler.Fit(svc.train);
  const ts::TimeSeries train = scaler.Transform(svc.train);
  const ts::TimeSeries test = scaler.Transform(svc.test);

  // Normal spectrum: average training-window spectrum.
  std::vector<double> mean_spectrum(21, 0.0);
  int count = 0;
  for (size_t start = 0; start + 40 <= train.length(); start += 40) {
    std::vector<double> window(40);
    for (int t = 0; t < 40; ++t) window[t] = train.value(start + t, 0);
    const auto amps = fft::AmplitudeSpectrum(window);
    for (size_t j = 0; j < amps.size(); ++j) mean_spectrum[j] += amps[j];
    ++count;
  }
  for (double& v : mean_spectrum) v /= count;
  const auto q_normal = fft::NormalizeSpectrum(mean_spectrum);
  const auto subset = fft::TopKIndices(mean_spectrum, 8, true);

  double kept = 0.0;
  for (int idx : subset) kept += q_normal[static_cast<size_t>(idx)];
  ASSERT_GT(kept, 8.0 / 21.0);  // Corollary 1's condition holds

  // Anomalous windows should lose more mass outside the subset.
  double normal_err = 0.0, anomalous_err = 0.0;
  int nc = 0, ac = 0;
  for (size_t start = 0; start + 40 <= test.length(); start += 20) {
    bool anomalous = false;
    for (size_t t = start; t < start + 40; ++t) {
      anomalous |= test.is_anomaly(t);
    }
    std::vector<double> window(40);
    for (int t = 0; t < 40; ++t) window[t] = test.value(start + t, 0);
    const double err = fft::SubsetKlError(
        fft::NormalizeSpectrum(fft::AmplitudeSpectrum(window)), subset);
    if (anomalous) {
      anomalous_err += err;
      ++ac;
    } else {
      normal_err += err;
      ++nc;
    }
  }
  ASSERT_GT(nc, 0);
  ASSERT_GT(ac, 0);
  EXPECT_GT(anomalous_err / ac, normal_err / nc);
}

}  // namespace
}  // namespace mace
