// Autograd stress properties: deep chains, wide fan-out, graph reuse,
// mixed-op compositions resembling the MACE forward pass, and linearity
// checks of the backward pass.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mace::tensor {
namespace {

TEST(AutogradStressTest, DeepChainOfScalarOps) {
  // 200 alternating adds/multiplies: f(x) = product form, gradient finite
  // and matches finite differences.
  Tensor x = Tensor::FromVector({1.01}, Shape{1}, true);
  Tensor y = x;
  for (int i = 0; i < 200; ++i) {
    y = i % 2 == 0 ? MulScalar(y, 1.001) : AddScalar(y, 0.0005);
  }
  Tensor loss = Sum(y);
  loss.Backward();
  const double analytic = x.grad()[0];
  EXPECT_TRUE(std::isfinite(analytic));
  EXPECT_NEAR(analytic, std::pow(1.001, 100), 1e-9);
}

TEST(AutogradStressTest, WideFanOutAccumulates) {
  // One leaf feeding 64 branches; gradient = sum of branch gradients.
  Tensor x = Tensor::FromVector({2.0}, Shape{1}, true);
  std::vector<Tensor> branches;
  for (int i = 0; i < 64; ++i) {
    branches.push_back(MulScalar(x, static_cast<double>(i)));
  }
  Tensor total = branches[0];
  for (size_t i = 1; i < branches.size(); ++i) {
    total = Add(total, branches[i]);
  }
  Sum(total).Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 63.0 * 64.0 / 2.0);
}

TEST(AutogradStressTest, DiamondGraph) {
  // x -> (a, b) -> c uses x twice through different paths.
  Tensor x = Tensor::FromVector({3.0}, Shape{1}, true);
  Tensor a = Square(x);          // x^2,  d/dx = 2x = 6
  Tensor b = MulScalar(x, 4.0);  // 4x,   d/dx = 4
  Tensor c = Mul(a, b);          // 4x^3, d/dx = 12x^2 = 108
  Sum(c).Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 108.0);
}

TEST(AutogradStressTest, BackwardIsLinearInUpstream) {
  // Backward of (alpha * loss) scales all leaf gradients by alpha.
  Rng rng(3);
  std::vector<double> values(12);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);

  auto grads_for = [&](double alpha) {
    Tensor x = Tensor::FromVector(values, Shape{3, 4}, true);
    Tensor w = Tensor::FromVector({1, -2, 0.5, 1.5, 0.3, -0.7, 2, 1},
                                  {4, 2});
    Tensor loss = MulScalar(Sum(Square(Tanh(MatMul(x, w)))), alpha);
    loss.Backward();
    return x.grad();
  };
  const auto g1 = grads_for(1.0);
  const auto g3 = grads_for(3.0);
  for (size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g3[i], 3.0 * g1[i], 1e-9);
  }
}

TEST(AutogradStressTest, MacePipelineShapeGradCheck) {
  // A miniature of the MACE forward: matmul -> slice -> amplitudes ->
  // signed-pow conv -> root -> matmul -> squared error. Finite-difference
  // check over every input element.
  Rng rng(7);
  const Shape shape{2, 8};
  std::vector<double> values(16);
  for (double& v : values) v = rng.Uniform(-1.5, 1.5);

  Tensor fwd = Tensor::RandomGaussian({8, 6}, &rng, 0.0, 0.5);
  Tensor inv = Tensor::RandomGaussian({6, 8}, &rng, 0.0, 0.5);
  Tensor kernel = Tensor::RandomUniform({2, 2, 3}, &rng, 0.05, 0.2);

  auto loss_fn = [&](const Tensor& x) {
    Tensor coeffs = MatMul(x, fwd);                           // [2, 6]
    Tensor re = Slice(coeffs, 1, 0, 3);
    Tensor im = Slice(coeffs, 1, 3, 6);
    Tensor amp = Sqrt(AddScalar(Add(Square(re), Square(im)), 1e-6));
    Tensor pooled = SignedRoot(
        Conv1d(Reshape(SignedPow(amp, 5.0), {1, 2, 3}), kernel, Tensor(),
               3),
        5.0);                                                  // [1, 2, 1]
    Tensor rec = MatMul(Reshape(pooled, {1, 2}),
                        Slice(inv, 0, 0, 2));                  // [1, 8]
    return MseLoss(rec, Slice(x, 0, 0, 1));
  };

  Tensor x = Tensor::FromVector(values, shape, true);
  Tensor loss = loss_fn(x);
  loss.Backward();
  const std::vector<double> analytic = x.grad();
  const double eps = 1e-6;
  for (size_t i = 0; i < values.size(); ++i) {
    std::vector<double> plus = values, minus = values;
    plus[i] += eps;
    minus[i] -= eps;
    const double fp = loss_fn(Tensor::FromVector(plus, shape)).item();
    const double fm = loss_fn(Tensor::FromVector(minus, shape)).item();
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-4 * (1.0 + std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(AutogradStressTest, RepeatedBackwardOnFreshGraphsIsStable) {
  // Building and differentiating 500 small graphs neither leaks gradients
  // across iterations (fresh leaves) nor degrades numerically.
  Rng rng(11);
  double first = 0.0;
  for (int iter = 0; iter < 500; ++iter) {
    Tensor x = Tensor::FromVector({0.5, -0.25, 1.0}, Shape{3}, true);
    Tensor loss = Mean(Square(Sigmoid(x)));
    loss.Backward();
    if (iter == 0) {
      first = x.grad()[0];
    } else {
      EXPECT_DOUBLE_EQ(x.grad()[0], first);
    }
  }
}

TEST(AutogradStressTest, LargeTensorReductionGradient) {
  Rng rng(13);
  Tensor x = Tensor::RandomGaussian({64, 64}, &rng, 0.0, 1.0, true);
  Tensor loss = Mean(Square(x));
  loss.Backward();
  // d mean(x^2)/dx = 2x / n.
  const double n = 64.0 * 64.0;
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0 * x.data()[i] / n, 1e-12);
  }
}

TEST(AutogradStressTest, MaximumSubgradientIsOneSided) {
  // Where a == b exactly, gradient goes to the first operand only (tie
  // rule documented in tensor.h).
  Tensor a = Tensor::FromVector({1.0, 2.0}, Shape{2}, true);
  Tensor b = Tensor::FromVector({1.0, 3.0}, Shape{2}, true);
  Sum(Maximum(a, b)).Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 1.0);  // tie -> a
  EXPECT_DOUBLE_EQ(b.grad()[0], 0.0);
  EXPECT_DOUBLE_EQ(a.grad()[1], 0.0);
  EXPECT_DOUBLE_EQ(b.grad()[1], 1.0);
}

}  // namespace
}  // namespace mace::tensor
