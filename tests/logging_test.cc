#include "common/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mace {
namespace {

/// RAII restore of the process-wide log level.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, BelowLevelRecordsAreCheap) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // The streamed expression must not be evaluated when filtered out.
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("payload");
  };
  MACE_LOG(kDebug) << expensive();
  MACE_LOG(kInfo) << expensive();
  MACE_LOG(kWarning) << expensive();
  EXPECT_EQ(evaluations, 0);
  MACE_LOG(kError) << "boundary case " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(LoggingTest, EmittedRecordsAreCounted) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  const uint64_t warnings = GetLogRecordCount(LogLevel::kWarning);
  const uint64_t errors = GetLogRecordCount(LogLevel::kError);
  const uint64_t infos = GetLogRecordCount(LogLevel::kInfo);
  MACE_LOG(kWarning) << "counted";
  MACE_LOG(kError) << "counted";
  MACE_LOG(kInfo) << "filtered, must not count";
  EXPECT_EQ(GetLogRecordCount(LogLevel::kWarning), warnings + 1);
  EXPECT_EQ(GetLogRecordCount(LogLevel::kError), errors + 1);
  EXPECT_EQ(GetLogRecordCount(LogLevel::kInfo), infos);
}

TEST(LoggingTest, ConcurrentRecordsDoNotInterleave) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep the test's stderr quiet
  const uint64_t before = GetLogRecordCount(LogLevel::kError);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        MACE_LOG(kError) << "thread-safety smoke record " << i;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(GetLogRecordCount(LogLevel::kError),
            before + kThreads * kPerThread);
}

TEST(LoggingTest, EmittedRecordContainsFileAndMessage) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  // Capture stderr through the message class directly.
  internal::LogMessage message(LogLevel::kWarning, "dir/file.cc", 42);
  message.stream() << "hello";
  const std::string text = message.stream().str();
  EXPECT_NE(text.find("WARN"), std::string::npos);
  EXPECT_NE(text.find("file.cc:42"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  // Destructor emits to stderr; nothing to assert beyond not crashing.
}

}  // namespace
}  // namespace mace
