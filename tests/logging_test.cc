#include "common/logging.h"

#include <gtest/gtest.h>

namespace mace {
namespace {

/// RAII restore of the process-wide log level.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, BelowLevelRecordsAreCheap) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // The streamed expression must not be evaluated when filtered out.
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("payload");
  };
  MACE_LOG(kDebug) << expensive();
  MACE_LOG(kInfo) << expensive();
  MACE_LOG(kWarning) << expensive();
  EXPECT_EQ(evaluations, 0);
  MACE_LOG(kError) << "boundary case " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, EmittedRecordContainsFileAndMessage) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  // Capture stderr through the message class directly.
  internal::LogMessage message(LogLevel::kWarning, "dir/file.cc", 42);
  message.stream() << "hello";
  const std::string text = message.stream().str();
  EXPECT_NE(text.find("WARN"), std::string::npos);
  EXPECT_NE(text.find("file.cc:42"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  // Destructor emits to stderr; nothing to assert beyond not crashing.
}

}  // namespace
}  // namespace mace
