#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace mace::eval {
namespace {

TEST(ConfusionTest, CountsAllQuadrants) {
  const std::vector<uint8_t> pred = {1, 1, 0, 0, 1};
  const std::vector<uint8_t> label = {1, 0, 1, 0, 1};
  const Confusion c = Confuse(pred, label);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(MetricsTest, FromConfusionFormulas) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 4;
  const PrMetrics m = FromConfusion(c);
  EXPECT_DOUBLE_EQ(m.precision, 0.8);
  EXPECT_DOUBLE_EQ(m.recall, 8.0 / 12.0);
  EXPECT_NEAR(m.f1, 2 * 0.8 * (2.0 / 3.0) / (0.8 + 2.0 / 3.0), 1e-12);
}

TEST(MetricsTest, DegenerateCountsGiveZeros) {
  const PrMetrics m = FromConfusion(Confusion{});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(PointAdjustTest, ExpandsDetectedSegments) {
  const std::vector<uint8_t> label = {0, 1, 1, 1, 0, 1, 1, 0};
  const std::vector<uint8_t> pred = {0, 0, 1, 0, 0, 0, 0, 0};
  const std::vector<uint8_t> adjusted = PointAdjust(pred, label);
  EXPECT_EQ(adjusted, (std::vector<uint8_t>{0, 1, 1, 1, 0, 0, 0, 0}));
}

TEST(PointAdjustTest, MissedSegmentsStayMissed) {
  const std::vector<uint8_t> label = {1, 1, 0, 1, 1};
  const std::vector<uint8_t> pred = {0, 0, 0, 0, 0};
  EXPECT_EQ(PointAdjust(pred, label), pred);
}

TEST(PointAdjustTest, FalsePositivesOutsideSegmentsKept) {
  const std::vector<uint8_t> label = {0, 0, 1, 1};
  const std::vector<uint8_t> pred = {1, 0, 0, 1};
  const std::vector<uint8_t> adjusted = PointAdjust(pred, label);
  EXPECT_EQ(adjusted, (std::vector<uint8_t>{1, 0, 1, 1}));
}

TEST(PointAdjustTest, SegmentAtSeriesBoundaries) {
  const std::vector<uint8_t> label = {1, 1, 0, 0, 1, 1};
  const std::vector<uint8_t> pred = {1, 0, 0, 0, 0, 1};
  const std::vector<uint8_t> adjusted = PointAdjust(pred, label);
  EXPECT_EQ(adjusted, (std::vector<uint8_t>{1, 1, 0, 0, 1, 1}));
}

TEST(EvaluateAtThresholdTest, ThresholdSeparatesScores) {
  const std::vector<double> scores = {0.1, 0.9, 0.2, 0.8};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  const PrMetrics m =
      EvaluateAtThreshold(scores, labels, 0.5, /*point_adjust=*/false);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(BestF1Test, FindsPerfectThresholdWhenSeparable) {
  const std::vector<double> scores = {0.1, 0.2, 0.3, 5.0, 6.0, 0.15};
  const std::vector<uint8_t> labels = {0, 0, 0, 1, 1, 0};
  auto result = BestF1Threshold(scores, labels, /*point_adjust=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->metrics.f1, 1.0);
  EXPECT_GT(result->threshold, 0.3);
  EXPECT_LT(result->threshold, 5.0);
}

TEST(BestF1Test, PointAdjustImprovesSegmentRecall) {
  // One hit inside a long segment: point-adjust credits the whole segment.
  std::vector<double> scores(20, 0.0);
  std::vector<uint8_t> labels(20, 0);
  for (int t = 5; t < 15; ++t) labels[t] = 1;
  scores[7] = 10.0;
  auto raw = BestF1Threshold(scores, labels, false);
  auto adjusted = BestF1Threshold(scores, labels, true);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(adjusted.ok());
  EXPECT_GT(adjusted->metrics.f1, raw->metrics.f1);
  EXPECT_DOUBLE_EQ(adjusted->metrics.f1, 1.0);
}

TEST(BestF1Test, AllNormalLabelsYieldZeroF1) {
  const std::vector<double> scores = {1.0, 2.0, 3.0};
  const std::vector<uint8_t> labels = {0, 0, 0};
  auto result = BestF1Threshold(scores, labels);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->metrics.f1, 0.0);
}

TEST(BestF1Test, ErrorsOnBadInput) {
  EXPECT_FALSE(BestF1Threshold({}, {}).ok());
  EXPECT_FALSE(BestF1Threshold({1.0}, {0, 1}).ok());
  EXPECT_FALSE(BestF1Threshold({1.0}, {1}, true, 1).ok());
}

TEST(MacroAverageTest, AveragesComponentwise) {
  PrMetrics a{1.0, 0.5, 2.0 / 3.0};
  PrMetrics b{0.5, 1.0, 2.0 / 3.0};
  const PrMetrics avg = MacroAverage({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.75);
  EXPECT_DOUBLE_EQ(avg.recall, 0.75);
  EXPECT_NEAR(avg.f1, 2.0 / 3.0, 1e-12);
}

TEST(MacroAverageTest, EmptyIsZero) {
  const PrMetrics avg = MacroAverage({});
  EXPECT_DOUBLE_EQ(avg.f1, 0.0);
}

}  // namespace
}  // namespace mace::eval
