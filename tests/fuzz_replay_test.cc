// Corpus-replay regression harness: every committed seed input under
// tests/fuzz/corpus/ (including inputs pinning previously fixed parser
// bugs) runs through its fuzz entry point on every ctest run, compiler
// permitting or not — the libFuzzer executables need clang, this does
// not. Passing means each entry point returned normally: no abort, no
// hang, no sanitizer report (the fuzz label is part of the asan/tsan
// check filters).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_env.h"
#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const std::string& target) {
  const fs::path dir = fs::path(MACE_FUZZ_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  std::error_code ec;
  for (auto it = fs::directory_iterator(dir, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file()) files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Replay(const std::string& target,
            void (*entry_point)(const uint8_t*, size_t)) {
  const std::vector<fs::path> files = CorpusFiles(target);
  ASSERT_FALSE(files.empty())
      << "no seed corpus under " << MACE_FUZZ_CORPUS_DIR << "/" << target
      << " — regenerate with mace_fuzz_seedgen";
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::vector<uint8_t> bytes = ReadBytes(file);
    entry_point(bytes.data(), bytes.size());
  }
}

TEST(FuzzReplay, ParseCsvCorpus) {
  Replay("parse_csv", mace::fuzz::FuzzParseCsv);
}

TEST(FuzzReplay, DetectorLoadCorpus) {
  Replay("detector_load", mace::fuzz::FuzzDetectorLoad);
}

TEST(FuzzReplay, ServeRequestCorpus) {
  Replay("serve_request", mace::fuzz::FuzzServeRequest);
}

TEST(FuzzReplay, HistorySnapshotCorpus) {
  Replay("history_snapshot", mace::fuzz::FuzzHistorySnapshot);
}

TEST(FuzzReplay, WireFrameCorpus) {
  Replay("wire_frame", mace::fuzz::FuzzWireFrame);
}

}  // namespace
