// The inference fast path (tensor no-grad mode + batched multi-window
// forwards) must change performance only: scores stay bit-identical to
// the per-window grad-mode pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/mace_detector.h"
#include "tensor/tensor.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 400, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

/// A deterministic pseudo-scaled window (ScoreWindow is a pure function
/// of its rows, so any values exercise the pipeline).
std::vector<std::vector<double>> MakeRows(int window, int features,
                                          int salt) {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window),
      std::vector<double>(static_cast<size_t>(features)));
  for (int t = 0; t < window; ++t) {
    for (int f = 0; f < features; ++f) {
      rows[static_cast<size_t>(t)][static_cast<size_t>(f)] =
          std::sin(0.37 * (t + 1) * (f + 1) + salt) +
          0.01 * (t % 5) * (salt + 1);
    }
  }
  return rows;
}

MaceDetector FitDetector(MaceConfig config,
                         const std::vector<ts::ServiceData>& services) {
  MaceDetector detector(config);
  EXPECT_TRUE(detector.Fit(services).ok());
  return detector;
}

// -- NoGradGuard semantics -------------------------------------------------

TEST(NoGradGuardTest, DisablesAndRestoresGradMode) {
  EXPECT_TRUE(tensor::GradModeEnabled());
  {
    tensor::NoGradGuard guard;
    EXPECT_FALSE(tensor::GradModeEnabled());
  }
  EXPECT_TRUE(tensor::GradModeEnabled());
}

TEST(NoGradGuardTest, NestsByRestoringTheModeItFound) {
  tensor::NoGradGuard outer;
  EXPECT_FALSE(tensor::GradModeEnabled());
  {
    tensor::NoGradGuard inner;
    EXPECT_FALSE(tensor::GradModeEnabled());
  }
  // The inner guard restores "disabled", not "enabled".
  EXPECT_FALSE(tensor::GradModeEnabled());
}

TEST(NoGradGuardTest, IsThreadLocal) {
  tensor::NoGradGuard guard;
  ASSERT_FALSE(tensor::GradModeEnabled());
  bool other_thread_grad_mode = false;
  std::thread([&] {
    other_thread_grad_mode = tensor::GradModeEnabled();
  }).join();
  EXPECT_TRUE(other_thread_grad_mode);
}

TEST(NoGradGuardTest, OpsBuildNoGraphUnderTheGuard) {
  tensor::Tensor weight =
      tensor::Tensor::FromVector({1.0, 2.0, 3.0}, /*requires_grad=*/true);
  tensor::Tensor input = tensor::Tensor::FromVector({4.0, 5.0, 6.0});

  tensor::Tensor grad_result = Mul(weight, input);
  EXPECT_TRUE(grad_result.requires_grad());
  EXPECT_EQ(grad_result.node()->parents.size(), 2u);

  tensor::NoGradGuard guard;
  tensor::Tensor inference_result = Mul(weight, input);
  EXPECT_FALSE(inference_result.requires_grad());
  EXPECT_TRUE(inference_result.node()->parents.empty());
  EXPECT_FALSE(inference_result.node()->backward);
  // Values are untouched by the mode.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(inference_result.data()[i], grad_result.data()[i]);
  }
}

TEST(NoGradGuardTest, GradModeGraphsStillDifferentiateAfterInferenceUse) {
  {
    tensor::NoGradGuard guard;
    tensor::Tensor a = tensor::Tensor::FromVector({1.0, 2.0});
    tensor::Tensor b = Mul(a, a);
    (void)b;
  }
  tensor::Tensor x =
      tensor::Tensor::FromVector({3.0, 4.0}, /*requires_grad=*/true);
  tensor::Tensor loss = tensor::Sum(Mul(x, x));
  loss.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 6.0);
  EXPECT_DOUBLE_EQ(x.grad()[1], 8.0);
}

// -- Bit-identity: no-grad vs grad -----------------------------------------

TEST(ScoreFastPathTest, NoGradScoresAreBitIdenticalToGradMode) {
  const auto services = TinyWorkload();
  MaceConfig grad_config;
  grad_config.epochs = 2;
  grad_config.score_no_grad = false;
  grad_config.score_batch = 1;
  MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  MaceDetector grad_mode = FitDetector(grad_config, services);
  MaceDetector no_grad = FitDetector(nograd_config, services);

  for (int s = 0; s < 2; ++s) {
    auto a = grad_mode.Score(s, services[static_cast<size_t>(s)].test);
    auto b = no_grad.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "service " << s << " step " << t;
    }
  }

  const auto rows = MakeRows(grad_config.window, 2, /*salt=*/1);
  auto a = grad_mode.ScoreWindow(0, rows);
  auto b = no_grad.ScoreWindow(0, rows);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "step " << t;
  }
}

// -- Bit-identity: batched vs per-window -----------------------------------

class BatchedScoringTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchedScoringTest, MatchesPerWindowScoresExactly) {
  const auto services = TinyWorkload();
  MaceConfig unbatched_config;
  unbatched_config.epochs = 2;
  unbatched_config.score_batch = 1;
  MaceConfig batched_config = unbatched_config;
  batched_config.score_batch = GetParam();

  MaceDetector unbatched = FitDetector(unbatched_config, services);
  MaceDetector batched = FitDetector(batched_config, services);

  for (int s = 0; s < 2; ++s) {
    auto a = unbatched.Score(s, services[static_cast<size_t>(s)].test);
    auto b = batched.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "service " << s << " step " << t;
    }
  }
}

// 3 leaves an odd tail against the 73 windows of the 400-step test split;
// 1 runs the batched config through the legacy path as a control.
INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchedScoringTest,
                         ::testing::Values(1, 3, 8, 64),
                         [](const auto& info) {
                           return "batch" + std::to_string(info.param);
                         });

TEST(BatchedScoringTest, ScoreWindowBatchMatchesScoreWindowLoop) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector = FitDetector(config, services);

  for (int batch_size : {1, 3, 5}) {
    std::vector<std::vector<std::vector<double>>> windows;
    for (int b = 0; b < batch_size; ++b) {
      windows.push_back(MakeRows(config.window, 2, /*salt=*/b));
    }
    auto batch = detector.ScoreWindowBatch(0, windows);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), windows.size());
    for (size_t b = 0; b < windows.size(); ++b) {
      auto single = detector.ScoreWindow(0, windows[b]);
      ASSERT_TRUE(single.ok());
      ASSERT_EQ((*batch)[b].size(), single->size());
      for (size_t t = 0; t < single->size(); ++t) {
        EXPECT_DOUBLE_EQ((*batch)[b][t], (*single)[t])
            << "batch_size " << batch_size << " window " << b << " step "
            << t;
      }
    }
  }
}

TEST(BatchedScoringTest, ScoreWindowBatchValidatesInput) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector = FitDetector(config, services);

  EXPECT_TRUE(detector.ScoreWindowBatch(0, {}).ok());
  EXPECT_FALSE(detector.ScoreWindowBatch(99, {MakeRows(config.window, 2, 0)})
                   .ok());
  // Wrong row count in the second window.
  std::vector<std::vector<std::vector<double>>> windows = {
      MakeRows(config.window, 2, 0), MakeRows(config.window - 1, 2, 1)};
  EXPECT_FALSE(detector.ScoreWindowBatch(0, windows).ok());
}

// -- Perf guard -------------------------------------------------------------

TEST(ScoreFastPathTest, NoGradScoreWindowDoesNotRegressPastGradMode) {
  const auto services = TinyWorkload();
  MaceConfig grad_config;
  grad_config.epochs = 1;
  grad_config.score_no_grad = false;
  MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  MaceDetector grad_mode = FitDetector(grad_config, services);
  MaceDetector no_grad = FitDetector(nograd_config, services);
  const auto rows = MakeRows(grad_config.window, 2, /*salt=*/3);

  // Warm up both paths (metric registration, buffer pool fill).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(grad_mode.ScoreWindow(0, rows).ok());
    ASSERT_TRUE(no_grad.ScoreWindow(0, rows).ok());
  }
  // Min over repetitions is robust to scheduler noise: the fast path must
  // at the very least not be slower than the graph-building path.
  constexpr int kReps = 25;
  auto min_latency = [&rows](const MaceDetector& detector) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kReps; ++i) {
      const auto begin = std::chrono::steady_clock::now();
      auto scores = detector.ScoreWindow(0, rows);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      EXPECT_TRUE(scores.ok());
      best = std::min(best, elapsed);
    }
    return best;
  };
  const double grad_min = min_latency(grad_mode);
  const double nograd_min = min_latency(no_grad);
  // 10% headroom over "no slower" absorbs timer quantization.
  EXPECT_LE(nograd_min, grad_min * 1.10)
      << "no-grad ScoreWindow (" << nograd_min
      << "s) regressed past grad mode (" << grad_min << "s)";
}

}  // namespace
}  // namespace mace::core
