// The inference fast path (tensor no-grad mode + batched multi-window
// forwards, and the fused scoring kernel of src/kernel/) must change
// performance only: the fused scalar arm stays bit-identical to the
// per-window grad-mode op-graph pipeline, and the SIMD arm stays within
// the pinned tolerance (kSimdRelTol/kSimdAbsTol below).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/mace_detector.h"
#include "core/streaming.h"
#include "kernel/fused_kernel.h"
#include "online/consensus.h"
#include "online/ensemble.h"
#include "serve/frontend.h"
#include "tensor/tensor.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 400, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

/// A deterministic pseudo-scaled window (ScoreWindow is a pure function
/// of its rows, so any values exercise the pipeline).
std::vector<std::vector<double>> MakeRows(int window, int features,
                                          int salt) {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window),
      std::vector<double>(static_cast<size_t>(features)));
  for (int t = 0; t < window; ++t) {
    for (int f = 0; f < features; ++f) {
      rows[static_cast<size_t>(t)][static_cast<size_t>(f)] =
          std::sin(0.37 * (t + 1) * (f + 1) + salt) +
          0.01 * (t % 5) * (salt + 1);
    }
  }
  return rows;
}

MaceDetector FitDetector(MaceConfig config,
                         const std::vector<ts::ServiceData>& services) {
  MaceDetector detector(config);
  EXPECT_TRUE(detector.Fit(services).ok());
  return detector;
}

// -- NoGradGuard semantics -------------------------------------------------

TEST(NoGradGuardTest, DisablesAndRestoresGradMode) {
  EXPECT_TRUE(tensor::GradModeEnabled());
  {
    tensor::NoGradGuard guard;
    EXPECT_FALSE(tensor::GradModeEnabled());
  }
  EXPECT_TRUE(tensor::GradModeEnabled());
}

TEST(NoGradGuardTest, NestsByRestoringTheModeItFound) {
  tensor::NoGradGuard outer;
  EXPECT_FALSE(tensor::GradModeEnabled());
  {
    tensor::NoGradGuard inner;
    EXPECT_FALSE(tensor::GradModeEnabled());
  }
  // The inner guard restores "disabled", not "enabled".
  EXPECT_FALSE(tensor::GradModeEnabled());
}

TEST(NoGradGuardTest, IsThreadLocal) {
  tensor::NoGradGuard guard;
  ASSERT_FALSE(tensor::GradModeEnabled());
  bool other_thread_grad_mode = false;
  std::thread([&] {
    other_thread_grad_mode = tensor::GradModeEnabled();
  }).join();
  EXPECT_TRUE(other_thread_grad_mode);
}

TEST(NoGradGuardTest, OpsBuildNoGraphUnderTheGuard) {
  tensor::Tensor weight =
      tensor::Tensor::FromVector({1.0, 2.0, 3.0}, /*requires_grad=*/true);
  tensor::Tensor input = tensor::Tensor::FromVector({4.0, 5.0, 6.0});

  tensor::Tensor grad_result = Mul(weight, input);
  EXPECT_TRUE(grad_result.requires_grad());
  EXPECT_EQ(grad_result.node()->parents.size(), 2u);

  tensor::NoGradGuard guard;
  tensor::Tensor inference_result = Mul(weight, input);
  EXPECT_FALSE(inference_result.requires_grad());
  EXPECT_TRUE(inference_result.node()->parents.empty());
  EXPECT_FALSE(inference_result.node()->backward);
  // Values are untouched by the mode.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(inference_result.data()[i], grad_result.data()[i]);
  }
}

TEST(NoGradGuardTest, GradModeGraphsStillDifferentiateAfterInferenceUse) {
  {
    tensor::NoGradGuard guard;
    tensor::Tensor a = tensor::Tensor::FromVector({1.0, 2.0});
    tensor::Tensor b = Mul(a, a);
    (void)b;
  }
  tensor::Tensor x =
      tensor::Tensor::FromVector({3.0, 4.0}, /*requires_grad=*/true);
  tensor::Tensor loss = tensor::Sum(Mul(x, x));
  loss.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 6.0);
  EXPECT_DOUBLE_EQ(x.grad()[1], 8.0);
}

// -- Bit-identity: no-grad vs grad -----------------------------------------

TEST(ScoreFastPathTest, NoGradScoresAreBitIdenticalToGradMode) {
  const auto services = TinyWorkload();
  MaceConfig grad_config;
  grad_config.epochs = 2;
  grad_config.score_no_grad = false;
  grad_config.score_batch = 1;
  MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  MaceDetector grad_mode = FitDetector(grad_config, services);
  MaceDetector no_grad = FitDetector(nograd_config, services);

  for (int s = 0; s < 2; ++s) {
    auto a = grad_mode.Score(s, services[static_cast<size_t>(s)].test);
    auto b = no_grad.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "service " << s << " step " << t;
    }
  }

  const auto rows = MakeRows(grad_config.window, 2, /*salt=*/1);
  auto a = grad_mode.ScoreWindow(0, rows);
  auto b = no_grad.ScoreWindow(0, rows);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "step " << t;
  }
}

// -- Bit-identity: batched vs per-window -----------------------------------

class BatchedScoringTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchedScoringTest, MatchesPerWindowScoresExactly) {
  const auto services = TinyWorkload();
  MaceConfig unbatched_config;
  unbatched_config.epochs = 2;
  unbatched_config.score_batch = 1;
  MaceConfig batched_config = unbatched_config;
  batched_config.score_batch = GetParam();

  MaceDetector unbatched = FitDetector(unbatched_config, services);
  MaceDetector batched = FitDetector(batched_config, services);

  for (int s = 0; s < 2; ++s) {
    auto a = unbatched.Score(s, services[static_cast<size_t>(s)].test);
    auto b = batched.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "service " << s << " step " << t;
    }
  }
}

// 3 leaves an odd tail against the 73 windows of the 400-step test split;
// 1 runs the batched config through the legacy path as a control.
INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchedScoringTest,
                         ::testing::Values(1, 3, 8, 64),
                         [](const auto& info) {
                           return "batch" + std::to_string(info.param);
                         });

TEST(BatchedScoringTest, ScoreWindowBatchMatchesScoreWindowLoop) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector = FitDetector(config, services);

  for (int batch_size : {1, 3, 5}) {
    std::vector<std::vector<std::vector<double>>> windows;
    for (int b = 0; b < batch_size; ++b) {
      windows.push_back(MakeRows(config.window, 2, /*salt=*/b));
    }
    auto batch = detector.ScoreWindowBatch(0, windows);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), windows.size());
    for (size_t b = 0; b < windows.size(); ++b) {
      auto single = detector.ScoreWindow(0, windows[b]);
      ASSERT_TRUE(single.ok());
      ASSERT_EQ((*batch)[b].size(), single->size());
      for (size_t t = 0; t < single->size(); ++t) {
        EXPECT_DOUBLE_EQ((*batch)[b][t], (*single)[t])
            << "batch_size " << batch_size << " window " << b << " step "
            << t;
      }
    }
  }
}

TEST(BatchedScoringTest, ScoreWindowBatchValidatesInput) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector = FitDetector(config, services);

  EXPECT_TRUE(detector.ScoreWindowBatch(0, {}).ok());
  EXPECT_FALSE(detector.ScoreWindowBatch(99, {MakeRows(config.window, 2, 0)})
                   .ok());
  // Wrong row count in the second window.
  std::vector<std::vector<std::vector<double>>> windows = {
      MakeRows(config.window, 2, 0), MakeRows(config.window - 1, 2, 1)};
  EXPECT_FALSE(detector.ScoreWindowBatch(0, windows).ok());
}

// -- Fused kernel vs op graph ----------------------------------------------

// The SIMD arm replaces scalar transcendentals (pow/tanh/sqrt) with
// polynomial vector versions and reassociates dot products into 4-lane
// FMA panels, so it is NOT bit-identical to the op graph; this is the
// pinned equivalence bound for the per-step errors it produces. The
// scalar arm pins to exact equality (EXPECT_EQ on the doubles).
constexpr double kSimdRelTol = 1e-9;
constexpr double kSimdAbsTol = 1e-11;

void ExpectScoresMatch(const std::vector<double>& reference,
                       const std::vector<double>& candidate, bool exact,
                       const std::string& what) {
  ASSERT_EQ(reference.size(), candidate.size()) << what;
  for (size_t t = 0; t < reference.size(); ++t) {
    if (std::isnan(reference[t])) {
      EXPECT_TRUE(std::isnan(candidate[t])) << what << " step " << t;
      continue;
    }
    if (exact) {
      EXPECT_EQ(reference[t], candidate[t]) << what << " step " << t;
    } else {
      const double tol =
          kSimdAbsTol + kSimdRelTol * std::abs(reference[t]);
      EXPECT_NEAR(reference[t], candidate[t], tol) << what << " step " << t;
    }
  }
}

/// Scores every surface of `detector` under its current engine/backend
/// setting and returns {Score(series), ScoreWindow, ScoreWindowBatch}.
struct SurfaceScores {
  std::vector<double> series;
  std::vector<double> window;
  std::vector<std::vector<double>> batch;
};

SurfaceScores ScoreAllSurfaces(MaceDetector& detector,
                               const ts::TimeSeries& test) {
  SurfaceScores out;
  auto series = detector.Score(0, test);
  EXPECT_TRUE(series.ok());
  out.series = std::move(series).value();
  const auto rows = MakeRows(detector.config().window, 2, /*salt=*/5);
  auto window = detector.ScoreWindow(0, rows);
  EXPECT_TRUE(window.ok());
  out.window = std::move(window).value();
  std::vector<std::vector<std::vector<double>>> windows;
  for (int b = 0; b < 5; ++b) {
    windows.push_back(MakeRows(detector.config().window, 2, /*salt=*/b));
  }
  auto batch = detector.ScoreWindowBatch(0, windows);
  EXPECT_TRUE(batch.ok());
  out.batch = std::move(batch).value();
  return out;
}

TEST(FusedKernelTest, ScalarArmIsBitIdenticalToOpGraphOnEverySurface) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector = FitDetector(config, services);

  detector.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);
  const SurfaceScores reference =
      ScoreAllSurfaces(detector, services[0].test);

  detector.set_score_engine(MaceDetector::ScoreEngine::kFused);
  detector.set_kernel_backend(kernel::Backend::kScalar);
  const SurfaceScores fused = ScoreAllSurfaces(detector, services[0].test);

  ExpectScoresMatch(reference.series, fused.series, /*exact=*/true,
                    "Score");
  ExpectScoresMatch(reference.window, fused.window, /*exact=*/true,
                    "ScoreWindow");
  ASSERT_EQ(reference.batch.size(), fused.batch.size());
  for (size_t b = 0; b < reference.batch.size(); ++b) {
    ExpectScoresMatch(reference.batch[b], fused.batch[b], /*exact=*/true,
                      "ScoreWindowBatch[" + std::to_string(b) + "]");
  }
}

TEST(FusedKernelTest, SimdArmMatchesOpGraphWithinPinnedTolerance) {
  if (!kernel::SimdSupported()) {
    GTEST_SKIP() << "no AVX2/FMA arm on this machine/build";
  }
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector = FitDetector(config, services);

  detector.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);
  const SurfaceScores reference =
      ScoreAllSurfaces(detector, services[0].test);

  detector.set_score_engine(MaceDetector::ScoreEngine::kFused);
  detector.set_kernel_backend(kernel::Backend::kSimd);
  const SurfaceScores fused = ScoreAllSurfaces(detector, services[0].test);

  ExpectScoresMatch(reference.series, fused.series, /*exact=*/false,
                    "Score");
  ExpectScoresMatch(reference.window, fused.window, /*exact=*/false,
                    "ScoreWindow");
  ASSERT_EQ(reference.batch.size(), fused.batch.size());
  for (size_t b = 0; b < reference.batch.size(); ++b) {
    ExpectScoresMatch(reference.batch[b], fused.batch[b], /*exact=*/false,
                      "ScoreWindowBatch[" + std::to_string(b) + "]");
  }
}

TEST(FusedKernelTest, ScoreUnseenMatchesOpGraphThroughAdHocServicePlan) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector = FitDetector(
      config, {services[0]});  // fit on one service, score the other unseen

  detector.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);
  auto reference = detector.ScoreUnseen(services[1]);
  ASSERT_TRUE(reference.ok());

  detector.set_score_engine(MaceDetector::ScoreEngine::kFused);
  detector.set_kernel_backend(kernel::Backend::kScalar);
  auto fused = detector.ScoreUnseen(services[1]);
  ASSERT_TRUE(fused.ok());
  ExpectScoresMatch(*reference, *fused, /*exact=*/true, "ScoreUnseen");
}

// -- Awkward shapes: B=1, odd / non-power-of-two windows, tiny bases -------
//
// The SIMD arm pads every row to 4 lanes, so windows that are not a
// multiple of 4 (tail lanes), tiny num_bases (whole rows narrower than
// one vector), and B=1 (no batch amortization) are exactly where a tail
// or indexing bug would hide. Each shape runs both arms against the op
// graph.

struct AwkwardShape {
  int window;
  int num_bases;
  int freq_kernel;
};

class AwkwardShapeTest : public ::testing::TestWithParam<AwkwardShape> {};

TEST_P(AwkwardShapeTest, FusedMatchesOpGraphOnBothArms) {
  const AwkwardShape shape = GetParam();
  MaceConfig config;
  config.epochs = 1;
  config.window = shape.window;
  config.num_bases = shape.num_bases;
  config.freq_kernel = shape.freq_kernel;
  const auto services = TinyWorkload();
  MaceDetector detector = FitDetector(config, services);

  for (int batch : {1, 3}) {
    std::vector<std::vector<std::vector<double>>> windows;
    for (int b = 0; b < batch; ++b) {
      windows.push_back(MakeRows(config.window, 2, /*salt=*/b + 11));
    }
    detector.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);
    auto reference = detector.ScoreWindowBatch(0, windows);
    ASSERT_TRUE(reference.ok());

    detector.set_score_engine(MaceDetector::ScoreEngine::kFused);
    detector.set_kernel_backend(kernel::Backend::kScalar);
    auto scalar = detector.ScoreWindowBatch(0, windows);
    ASSERT_TRUE(scalar.ok());
    detector.set_kernel_backend(kernel::Backend::kSimd);
    auto simd = detector.ScoreWindowBatch(0, windows);
    ASSERT_TRUE(simd.ok());

    for (int b = 0; b < batch; ++b) {
      const std::string what = "window=" + std::to_string(shape.window) +
                               " B=" + std::to_string(batch) + " b=" +
                               std::to_string(b);
      ExpectScoresMatch((*reference)[static_cast<size_t>(b)],
                        (*scalar)[static_cast<size_t>(b)], /*exact=*/true,
                        "scalar " + what);
      ExpectScoresMatch((*reference)[static_cast<size_t>(b)],
                        (*simd)[static_cast<size_t>(b)],
                        /*exact=*/!kernel::SimdSupported(), "simd " + what);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AwkwardShapeTest,
    ::testing::Values(AwkwardShape{6, 3, 3}, AwkwardShape{7, 3, 3},
                      AwkwardShape{11, 5, 2}, AwkwardShape{33, 16, 5},
                      AwkwardShape{41, 20, 4}),
    [](const auto& info) {
      return "window" + std::to_string(info.param.window) + "bases" +
             std::to_string(info.param.num_bases);
    });

// Denormals and signed zeros flow through SignedPow / the dualistic
// amplifier's shift arithmetic; the scalar arm must reproduce the op
// graph bit for bit even there, and the SIMD arm (whose pow handles
// denormals via a 2^54 pre-scale) must stay within the pinned tolerance.
TEST(FusedKernelTest, DenormalAndSignedZeroInputsMatch) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector = FitDetector(config, services);

  auto rows = MakeRows(config.window, 2, /*salt=*/0);
  rows[0][0] = 0.0;
  rows[1][0] = -0.0;
  rows[2][0] = 1e-310;
  rows[3][0] = -1e-310;
  rows[4][0] = 5e-324;  // smallest positive denormal
  rows[5][0] = -5e-324;
  rows[6][1] = 0.0;
  rows[7][1] = -0.0;
  rows[8][1] = 2.2250738585072014e-308;  // DBL_MIN boundary
  for (size_t t = 9; t < rows.size(); ++t) rows[t][0] = 0.0;

  detector.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);
  auto reference = detector.ScoreWindow(0, rows);
  ASSERT_TRUE(reference.ok());

  detector.set_score_engine(MaceDetector::ScoreEngine::kFused);
  detector.set_kernel_backend(kernel::Backend::kScalar);
  auto scalar = detector.ScoreWindow(0, rows);
  ASSERT_TRUE(scalar.ok());
  ExpectScoresMatch(*reference, *scalar, /*exact=*/true, "scalar denormal");

  detector.set_kernel_backend(kernel::Backend::kSimd);
  auto simd = detector.ScoreWindow(0, rows);
  ASSERT_TRUE(simd.ok());
  ExpectScoresMatch(*reference, *simd, /*exact=*/!kernel::SimdSupported(),
                    "simd denormal");
}

// -- Batched consumers: streaming, serve, online ensemble lanes ------------
//
// Every batched scoring surface consumes the fused kernel; each one must
// reproduce the op-graph engine's output (bitwise on the scalar arm).

TEST(FusedConsumersTest, StreamingPushManyMatchesOpGraph) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  MaceDetector fused = FitDetector(config, services);
  MaceDetector reference = FitDetector(config, services);  // same seed
  fused.set_kernel_backend(kernel::Backend::kScalar);
  reference.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);

  auto fused_scorer = StreamingScorer::Create(&fused, 0);
  auto reference_scorer = StreamingScorer::Create(&reference, 0);
  ASSERT_TRUE(fused_scorer.ok() && reference_scorer.ok());

  const ts::TimeSeries& test = services[0].test;
  std::vector<double> fused_scores;
  std::vector<double> reference_scores;
  // Chunked PushMany drives the batched ScoreWindowBatch path with
  // ragged chunk sizes (including chunks smaller than the window).
  for (size_t t = 0; t < test.length();) {
    const size_t chunk = std::min<size_t>(1 + (t % 13), test.length() - t);
    std::vector<std::vector<double>> observations(
        test.values().begin() + static_cast<ptrdiff_t>(t),
        test.values().begin() + static_cast<ptrdiff_t>(t + chunk));
    auto a = fused_scorer->PushMany(observations);
    auto b = reference_scorer->PushMany(observations);
    ASSERT_TRUE(a.ok() && b.ok());
    for (const auto& per_obs : *a) {
      fused_scores.insert(fused_scores.end(), per_obs.begin(),
                          per_obs.end());
    }
    for (const auto& per_obs : *b) {
      reference_scores.insert(reference_scores.end(), per_obs.begin(),
                              per_obs.end());
    }
    t += chunk;
  }
  const auto fused_tail = fused_scorer->Finish();
  const auto reference_tail = reference_scorer->Finish();
  fused_scores.insert(fused_scores.end(), fused_tail.begin(),
                      fused_tail.end());
  reference_scores.insert(reference_scores.end(), reference_tail.begin(),
                          reference_tail.end());
  ExpectScoresMatch(reference_scores, fused_scores, /*exact=*/true,
                    "PushMany stream");
}

TEST(FusedConsumersTest, ServeScoreGroupsMatchOpGraph) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  auto fused_model = std::make_shared<MaceDetector>(config);
  ASSERT_TRUE(fused_model->Fit(services).ok());
  fused_model->set_kernel_backend(kernel::Backend::kScalar);
  MaceDetector reference = FitDetector(config, services);  // same seed
  reference.set_score_engine(MaceDetector::ScoreEngine::kOpGraph);

  serve::ServeConfig serve_config;
  serve_config.num_shards = 1;
  serve_config.max_batch = 16;  // bursts drain as ProcessScoreGroup batches
  auto frontend = serve::ServeFrontend::Create(fused_model, serve_config);
  ASSERT_TRUE(frontend.ok());

  const ts::TimeSeries& test = services[0].test;
  std::vector<std::future<serve::ScoreBatch>> futures;
  for (size_t t = 0; t < test.length(); ++t) {
    auto f = (*frontend)->Submit("tenant", 0, test.values()[t]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  std::vector<double> pooled;
  for (auto& f : futures) {
    serve::ScoreBatch batch = f.get();
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    pooled.insert(pooled.end(), batch.scores.begin(), batch.scores.end());
  }
  auto tail = (*frontend)->Close("tenant", 0);
  ASSERT_TRUE(tail.ok());
  pooled.insert(pooled.end(), tail->begin(), tail->end());

  auto reference_scorer = StreamingScorer::Create(&reference, 0);
  ASSERT_TRUE(reference_scorer.ok());
  std::vector<double> sequential;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = reference_scorer->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    sequential.insert(sequential.end(), out->begin(), out->end());
  }
  const auto seq_tail = reference_scorer->Finish();
  sequential.insert(sequential.end(), seq_tail.begin(), seq_tail.end());
  ExpectScoresMatch(sequential, pooled, /*exact=*/true, "serve groups");
}

TEST(FusedConsumersTest, OnlineEnsembleLanesMatchOpGraph) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  auto fused_model = std::make_shared<MaceDetector>(config);
  ASSERT_TRUE(fused_model->Fit(services).ok());
  fused_model->set_kernel_backend(kernel::Backend::kScalar);
  auto reference_model = std::make_shared<MaceDetector>(config);
  ASSERT_TRUE(reference_model->Fit(services).ok());  // same seed
  reference_model->set_score_engine(MaceDetector::ScoreEngine::kOpGraph);

  const auto policy = online::MakeConsensusPolicy(online::ConsensusKind::kMax);
  online::ModelEnsemble fused_ensemble(2);
  fused_ensemble.Promote(fused_model, /*threshold=*/0.5);
  online::ModelEnsemble reference_ensemble(2);
  reference_ensemble.Promote(reference_model, /*threshold=*/0.5);
  online::EnsembleBinding fused_binding(&fused_ensemble, policy.get());
  online::EnsembleBinding reference_binding(&reference_ensemble,
                                            policy.get());

  // Lanes consume via their own StreamingScorer (the batched PushMany
  // surface under OnObservations); verdict scores are threshold ratios of
  // the lane model's emitted step scores, so they must agree bitwise.
  const ts::TimeSeries& test = services[0].test;
  std::vector<std::vector<double>> observations(test.values().begin(),
                                                test.values().end());
  fused_binding.OnObservations(observations);
  reference_binding.OnObservations(observations);
  ASSERT_EQ(fused_binding.active_lanes(), 1u);
  bool any_vote = false;
  for (size_t step = 0;
       step + static_cast<size_t>(config.window) < test.length(); ++step) {
    const core::StepVerdict a = fused_binding.OnEmit(step, 0.1);
    const core::StepVerdict b = reference_binding.OnEmit(step, 0.1);
    ASSERT_EQ(a.voted, b.voted) << "step " << step;
    if (!a.voted) continue;
    any_vote = true;
    EXPECT_EQ(a.score, b.score) << "step " << step;
    EXPECT_EQ(a.anomaly, b.anomaly) << "step " << step;
  }
  EXPECT_TRUE(any_vote);
}

// -- Perf guard -------------------------------------------------------------

TEST(ScoreFastPathTest, NoGradScoreWindowDoesNotRegressPastGradMode) {
  const auto services = TinyWorkload();
  MaceConfig grad_config;
  grad_config.epochs = 1;
  grad_config.score_no_grad = false;
  MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  MaceDetector grad_mode = FitDetector(grad_config, services);
  MaceDetector no_grad = FitDetector(nograd_config, services);
  const auto rows = MakeRows(grad_config.window, 2, /*salt=*/3);

  // Warm up both paths (metric registration, buffer pool fill).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(grad_mode.ScoreWindow(0, rows).ok());
    ASSERT_TRUE(no_grad.ScoreWindow(0, rows).ok());
  }
  // Min over repetitions is robust to scheduler noise: the fast path must
  // at the very least not be slower than the graph-building path.
  constexpr int kReps = 25;
  auto min_latency = [&rows](const MaceDetector& detector) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kReps; ++i) {
      const auto begin = std::chrono::steady_clock::now();
      auto scores = detector.ScoreWindow(0, rows);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      EXPECT_TRUE(scores.ok());
      best = std::min(best, elapsed);
    }
    return best;
  };
  const double grad_min = min_latency(grad_mode);
  const double nograd_min = min_latency(no_grad);
  // 10% headroom over "no slower" absorbs timer quantization.
  EXPECT_LE(nograd_min, grad_min * 1.10)
      << "no-grad ScoreWindow (" << nograd_min
      << "s) regressed past grad mode (" << grad_min << "s)";
}

}  // namespace
}  // namespace mace::core
