#include "common/math_utils.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mace {
namespace {

TEST(DoubleFactorialTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DoubleFactorial(-1), 1.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(0), 1.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(1), 1.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(2), 2.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(5), 15.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(6), 48.0);
  EXPECT_DOUBLE_EQ(DoubleFactorial(7), 105.0);
}

TEST(SignedPowTest, OddPowerMatchesPlainPower) {
  for (double x : {-2.5, -1.0, -0.3, 0.0, 0.7, 3.0}) {
    EXPECT_NEAR(SignedPow(x, 3.0), x * x * x, 1e-12);
  }
}

TEST(SignedPowTest, PreservesSign) {
  EXPECT_LT(SignedPow(-2.0, 4.0), 0.0);
  EXPECT_GT(SignedPow(2.0, 4.0), 0.0);
}

TEST(SignedRootTest, InvertsSignedPow) {
  for (double x : {-8.0, -1.0, 0.5, 27.0}) {
    EXPECT_NEAR(SignedRoot(SignedPow(x, 5.0), 5.0), x, 1e-9);
  }
}

TEST(MeanVarianceTest, BasicValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
}

TEST(MeanVarianceTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> neg(b.size());
  for (size_t i = 0; i < b.size(); ++i) neg[i] = -b[i];
  EXPECT_NEAR(PearsonCorrelation(a, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateReturnsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 5.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 1.0}, 0.25).value(), 0.25);
}

TEST(QuantileTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
}

// Pin: CalibratedThreshold must reproduce the monitor's original inline
// rule (2 x P90 of the calibration scores) bit for bit — the helper was
// hoisted out of examples/streaming_monitor.cpp and is now also the
// online trainer's per-generation calibration.
TEST(CalibratedThresholdTest, MatchesInlineMonitorRule) {
  Rng rng(404);
  std::vector<double> scores;
  for (int i = 0; i < 240; ++i) {
    scores.push_back(std::exp(rng.Gaussian(0.0, 1.0)));
  }
  const Result<double> q90 = Quantile(scores, 0.90);
  ASSERT_TRUE(q90.ok());
  const double inline_threshold = 2.0 * *q90;

  const Result<double> hoisted = CalibratedThreshold(scores);
  ASSERT_TRUE(hoisted.ok());
  EXPECT_EQ(*hoisted, inline_threshold);

  // Non-default scale/quantile follow the same rule.
  const Result<double> q50 = Quantile(scores, 0.5);
  const Result<double> custom = CalibratedThreshold(scores, 3.0, 0.5);
  ASSERT_TRUE(q50.ok() && custom.ok());
  EXPECT_EQ(*custom, 3.0 * *q50);

  EXPECT_FALSE(CalibratedThreshold({}).ok());
  EXPECT_FALSE(CalibratedThreshold({1.0}, 2.0, 1.5).ok());
}

TEST(GaussianPdfTest, PeakAtMean) {
  EXPECT_NEAR(GaussianPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(GaussianPdf(3.0, 3.0, 2.0), GaussianPdf(4.0, 3.0, 2.0));
}

TEST(KernelDensityTest, FitRequiresSamples) {
  EXPECT_FALSE(KernelDensity::Fit({}).ok());
}

TEST(KernelDensityTest, DensityConcentratesAroundSamples) {
  auto kde = KernelDensity::Fit({0.0, 0.1, -0.1}, 0.5);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(0.0), kde->Density(3.0));
}

TEST(KernelDensityTest, SilvermanBandwidthPositive) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.Gaussian());
  auto kde = KernelDensity::Fit(samples);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  // Density near the mode of N(0,1) should be near 0.4.
  EXPECT_NEAR(kde->Density(0.0), 0.4, 0.1);
}

TEST(KlDivergenceTest, ZeroForIdenticalDistributions) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) samples.push_back(rng.Gaussian());
  auto p = KernelDensity::Fit(samples, 0.3);
  auto q = KernelDensity::Fit(samples, 0.3);
  EXPECT_NEAR(KlDivergence(*p, *q), 0.0, 1e-9);
}

TEST(KlDivergenceTest, GrowsWithSeparation) {
  Rng rng(11);
  std::vector<double> base, near, far;
  for (int i = 0; i < 300; ++i) {
    const double g = rng.Gaussian();
    base.push_back(g);
    near.push_back(g + 0.5);
    far.push_back(g + 3.0);
  }
  auto p = KernelDensity::Fit(base, 0.3);
  auto qn = KernelDensity::Fit(near, 0.3);
  auto qf = KernelDensity::Fit(far, 0.3);
  const double kl_near = KlDivergence(*p, *qn);
  const double kl_far = KlDivergence(*p, *qf);
  EXPECT_GT(kl_near, 0.0);
  EXPECT_GT(kl_far, kl_near);
}

TEST(GpdTest, FitRequiresTwoSamples) {
  EXPECT_FALSE(FitGpd({1.0}).ok());
}

TEST(GpdTest, ExponentialTailHasSmallShape) {
  // Exceedances from Exp(1): GPD shape ~ 0, scale ~ 1.
  Rng rng(13);
  std::vector<double> exceedances;
  for (int i = 0; i < 5000; ++i) {
    exceedances.push_back(-std::log(1.0 - rng.Uniform() + 1e-12));
  }
  auto params = FitGpd(exceedances);
  ASSERT_TRUE(params.ok());
  EXPECT_NEAR(params->shape, 0.0, 0.1);
  EXPECT_NEAR(params->scale, 1.0, 0.1);
}

TEST(PotTest, RequiresEnoughScores) {
  EXPECT_FALSE(PotThreshold({1, 2, 3}, 1e-3).ok());
}

TEST(PotTest, RejectsBadRisk) {
  std::vector<double> scores(100, 1.0);
  EXPECT_FALSE(PotThreshold(scores, 0.0).ok());
  EXPECT_FALSE(PotThreshold(scores, 1.0).ok());
}

TEST(PotTest, ThresholdAboveInitialLevelForSmallRisk) {
  Rng rng(17);
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(-std::log(1.0 - rng.Uniform() + 1e-12));
  }
  auto t98 = Quantile(scores, 0.98);
  auto threshold = PotThreshold(scores, 1e-4, 0.98);
  ASSERT_TRUE(threshold.ok());
  EXPECT_GT(*threshold, *t98);
}

TEST(PotTest, ExponentialTailQuantileIsAccurate) {
  // For Exp(1), the q-quantile is -log(risk): POT should land near it.
  Rng rng(19);
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(-std::log(1.0 - rng.Uniform() + 1e-12));
  }
  auto threshold = PotThreshold(scores, 1e-3, 0.98);
  ASSERT_TRUE(threshold.ok());
  EXPECT_NEAR(*threshold, -std::log(1e-3), 0.6);
}

}  // namespace
}  // namespace mace
