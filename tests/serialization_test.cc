#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(11 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 20.0;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.7};
    pattern.feature_lags = {0.0, 1.5};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 160, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

TEST(SerializationTest, SaveBeforeFitFails) {
  MaceDetector detector;
  EXPECT_EQ(detector.Save("/tmp/never.mace").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SerializationTest, RoundTripPreservesScores) {
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector(config);
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());

  const std::string path = ::testing::TempDir() + "/model.mace";
  ASSERT_TRUE(detector.Save(path).ok());

  auto loaded = MaceDetector::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->config().window, config.window);
  EXPECT_EQ(loaded->subspaces().size(), 2u);
  EXPECT_EQ(loaded->subspaces()[0].bases, detector.subspaces()[0].bases);
  EXPECT_EQ(loaded->ParameterCount(), detector.ParameterCount());

  for (int s = 0; s < 2; ++s) {
    auto original = detector.Score(s, services[s].test);
    auto restored = loaded->Score(s, services[s].test);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(original->size(), restored->size());
    for (size_t t = 0; t < original->size(); ++t) {
      EXPECT_NEAR((*original)[t], (*restored)[t], 1e-9) << "step " << t;
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedDetectorScoresUnseenServices) {
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const std::string path = ::testing::TempDir() + "/model2.mace";
  ASSERT_TRUE(detector.Save(path).ok());

  auto loaded = MaceDetector::Load(path);
  ASSERT_TRUE(loaded.ok());
  const auto services = TinyWorkload();
  auto scores = loaded->ScoreUnseen(services[1]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), services[1].test.length());
}

TEST(SerializationTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.mace";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not a model\n", f);
    fclose(f);
  }
  auto loaded = MaceDetector::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileIsIoError) {
  auto loaded = MaceDetector::Load("/no/such/model.mace");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, TruncatedFileDetected) {
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const std::string path = ::testing::TempDir() + "/trunc.mace";
  ASSERT_TRUE(detector.Save(path).ok());
  // Truncate to the first 200 bytes.
  {
    std::string contents;
    {
      FILE* f = fopen(path.c_str(), "r");
      char buffer[200];
      const size_t n = fread(buffer, 1, sizeof(buffer), f);
      contents.assign(buffer, n);
      fclose(f);
    }
    FILE* f = fopen(path.c_str(), "w");
    fwrite(contents.data(), 1, contents.size(), f);
    fclose(f);
  }
  EXPECT_FALSE(MaceDetector::Load(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileErrorNamesPathAndReason) {
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const std::string path = ::testing::TempDir() + "/trunc_reason.mace";
  ASSERT_TRUE(detector.Save(path).ok());

  // Truncate mid-file at several byte counts: every failure must be a
  // descriptive InvalidArgument naming the file and calling out the
  // truncation, never a generic error (a failed hot reload surfaces this
  // message to the operator).
  std::string contents;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  // (Truncation points land mid-value; cutting only the final bytes could
  // still parse as a shorter valid number.)
  for (const size_t keep : {contents.size() / 8, contents.size() / 2}) {
    {
      std::ofstream out(path, std::ios::trunc);
      out.write(contents.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = MaceDetector::Load(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find(path), std::string::npos)
        << "message lacks the path: " << loaded.status().message();
    EXPECT_NE(loaded.status().message().find("truncated"),
              std::string::npos)
        << "message lacks the reason: " << loaded.status().message();
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, CorruptValueErrorNamesPathAndSection) {
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const std::string path = ::testing::TempDir() + "/corrupt_reason.mace";
  ASSERT_TRUE(detector.Save(path).ok());

  // Corrupt (not truncate) the file: replace a numeric token in the last
  // quarter — inside the parameter block — with garbage text.
  std::string contents;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  const size_t pos = contents.find(' ', 3 * contents.size() / 4);
  ASSERT_NE(pos, std::string::npos);
  contents.replace(pos + 1, 1, "x");
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  auto loaded = MaceDetector::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("parameter tensor"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsInvalidConfigBeforeConstruction) {
  // A corrupt stride must surface as a Corrupt status, not as the
  // MACE_CHECK abort the MaceDetector constructor uses for programmer
  // error. Zero out score_stride (third token of the config line).
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const std::string path = ::testing::TempDir() + "/bad_stride.mace";
  ASSERT_TRUE(detector.Save(path).ok());

  std::string contents;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  const size_t config_line = contents.find('\n') + 1;
  size_t token = config_line;
  for (int skip = 0; skip < 2; ++skip) {
    token = contents.find(' ', token) + 1;
  }
  const size_t token_end = contents.find(' ', token);
  contents.replace(token, token_end - token, "0");
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }

  auto loaded = MaceDetector::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("invalid config"),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("score_stride"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mace::core
