// Regenerates tests/fuzz/corpus/ — the committed seed inputs replayed by
// fuzz_replay_test and used as the libFuzzer starting corpus.
//
//   ./build/tests/fuzz/mace_fuzz_seedgen [output_root]
//
// Run it after changing the model file format or the serve byte
// protocol, then commit the outputs. Seeds fall into three groups per
// target: well-formed inputs (coverage anchors), targeted malformations
// (one per Load/Parse validation branch), and regression inputs pinning
// previously fixed parser bugs (e.g. the "1.5abc" trailing-garbage
// accept in ParseCell).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "fuzz/fuzz_env.h"

namespace {

namespace fs = std::filesystem;

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MACE_CHECK(out.good()) << "cannot open " << path.string();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  MACE_CHECK(out.good()) << "cannot write " << path.string();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

/// Replaces token `index` (space-separated) of `line`.
std::string EditToken(const std::string& line, size_t index,
                      const std::string& replacement) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  MACE_CHECK(index < tokens.size())
      << "token " << index << " of '" << line << "'";
  tokens[index] = replacement;
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

// -- detector_load ---------------------------------------------------------

/// Model file line layout (see mace_serialization.cc): 0 magic, 1 config,
/// 2 "features services", then per service [means, stddevs, bases], then
/// param tensor count and one vector line per tensor. TinyModel has 2
/// services, so params start at line 9. Config line field 0 is window,
/// field 10 is freq_kernel.
void WriteDetectorLoadCorpus(const fs::path& dir) {
  const std::string model_path = mace::fuzz::ScratchPath("seedgen_model");
  MACE_CHECK_OK(mace::fuzz::TinyModel()->Save(model_path));
  std::ifstream in(model_path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string valid = buffer.str();
  std::remove(model_path.c_str());
  const std::vector<std::string> lines = SplitLines(valid);
  MACE_CHECK(lines.size() > 10) << "unexpected model layout";

  auto mutate = [&](size_t line, size_t token, const std::string& value) {
    std::vector<std::string> copy = lines;
    copy[line] = EditToken(copy[line], token, value);
    return JoinLines(copy);
  };

  WriteBytes(dir / "valid.mace", valid);
  WriteBytes(dir / "empty.mace", "");
  WriteBytes(dir / "garbage.mace", "\x7f\x45\x4c\x46\x01\x01\xff\x00 not a model\n");
  WriteBytes(dir / "bad_magic.mace", mutate(0, 0, "MACEv9"));
  WriteBytes(dir / "truncated_header.mace", valid.substr(0, 20));
  WriteBytes(dir / "truncated_params.mace", valid.substr(0, valid.size() / 2));
  WriteBytes(dir / "huge_window.mace", mutate(1, 0, "99999"));
  WriteBytes(dir / "negative_window.mace", mutate(1, 0, "-5"));
  WriteBytes(dir / "freq_kernel_exceeds_subspace.mace", mutate(1, 10, "7"));
  // Regression: Load once compared freq_kernel against the 2k
  // coefficient columns instead of the k amplitude columns the model
  // actually convolves, so freq_kernel = num_bases + 1 passed validation
  // and CHECK-aborted inside MaceModel.
  WriteBytes(dir / "freq_kernel_amplitude_regression.mace",
             mutate(1, 10, "4"));
  WriteBytes(dir / "zero_services.mace", mutate(2, 1, "0"));
  WriteBytes(dir / "huge_services.mace", mutate(2, 1, "99999"));
  WriteBytes(dir / "huge_features.mace", mutate(2, 0, "99999"));
  WriteBytes(dir / "huge_count.mace", mutate(3, 0, "99999999999"));
  WriteBytes(dir / "means_size_mismatch.mace", mutate(3, 0, "1"));
  WriteBytes(dir / "nan_stddev.mace", mutate(4, 1, "nan"));
  WriteBytes(dir / "zero_stddev.mace", mutate(4, 2, "0"));
  WriteBytes(dir / "too_many_bases.mace", mutate(5, 0, "7"));
  WriteBytes(dir / "base_out_of_range.mace", mutate(5, 1, "9999"));
  // Service 1's bases (line 8) shrunk to 2 indices: coefficient width
  // differs from service 0 — the cross-service consistency branch.
  {
    std::vector<std::string> copy = lines;
    copy[8] = "2 0 1";
    WriteBytes(dir / "inconsistent_subspace.mace", JoinLines(copy));
  }
  WriteBytes(dir / "param_count_mismatch.mace", mutate(9, 0, "3"));
  // Loads successfully with a NaN weight: exercises the post-load
  // scoring probe of the fuzz target.
  WriteBytes(dir / "nan_param.mace", mutate(10, 2, "nan"));
}

// -- parse_csv -------------------------------------------------------------

void WriteParseCsvCorpus(const fs::path& dir) {
  WriteBytes(dir / "basic.csv", "a,b\n1,2\n3,4\n");
  WriteBytes(dir / "no_header.csv", "1,2\n3,4\n");
  WriteBytes(dir / "empty.csv", "");
  WriteBytes(dir / "header_only.csv", "a,b\n");
  // Regression: ParseCell once accepted trailing garbage after the
  // number ("1.5abc" parsed as 1.5).
  WriteBytes(dir / "trailing_garbage.csv", "a,b\n1.5abc,2\n");
  WriteBytes(dir / "nan_inf.csv", "f0,f1\nnan,1\ninf,-inf\n1,2\n");
  WriteBytes(dir / "ragged.csv", "a,b\n1\n2,3,4\n");
  WriteBytes(dir / "empty_cell.csv", "a,b\n1,\n");
  WriteBytes(dir / "huge_exponent.csv", "a\n1e999\n-1e999\n");
  WriteBytes(dir / "whitespace.csv", " 1 , 2 \n 3 ,4\n");
  WriteBytes(dir / "signs.csv", "a,b\n+1,-2.5e-3\n-0,.5\n");
  WriteBytes(dir / "hex_and_words.csv", "a\n0x10\ninfinity\nNAN\n");
  WriteBytes(dir / "crlf.csv", "a,b\r\n1,2\r\n");
  WriteBytes(dir / "all_nan_column.csv", "a,b\nnan,1\nnan,2\nnan,3\n");
}

// -- serve_request ---------------------------------------------------------

/// Mirrors the ByteReader decode of fuzz_serve_request.cc.
struct StreamBuilder {
  std::string bytes;
  StreamBuilder& Byte(uint8_t b) {
    bytes += static_cast<char>(b);
    return *this;
  }
  StreamBuilder& Double(uint64_t bits) {
    for (int i = 7; i >= 0; --i) {
      bytes += static_cast<char>((bits >> (8 * i)) & 0xff);
    }
    return *this;
  }
};

constexpr uint64_t kNanBits = 0x7ff8000000000000ull;
constexpr uint64_t kInfBits = 0x7ff0000000000000ull;
constexpr uint64_t kOneBits = 0x3ff0000000000000ull;

void WriteServeRequestCorpus(const fs::path& dir) {
  WriteBytes(dir / "empty.bin", "");
  // [shard][config policy] then ops [kind][tenant][service]...
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);  // 1 shard, reject
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
        kOneBits);  // Score t0 svc1, no override, [nan, 1.0]
    WriteBytes(dir / "nan_score_reject.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(1).Byte(1);  // 2 shards, impute
    for (int i = 0; i < 6; ++i) {
      b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
          kOneBits);
    }
    WriteBytes(dir / "nan_score_impute.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(2);  // propagate: fill a window past one NaN row
    for (int i = 0; i < 10; ++i) {
      const uint64_t first = i == 3 ? kNanBits : kOneBits;
      b.Byte(0).Byte(1).Byte(2).Byte(3).Byte(2).Double(first).Double(
          kOneBits);
    }
    WriteBytes(dir / "nan_score_propagate.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);  // config reject, request overrides to propagate
    b.Byte(0).Byte(2).Byte(2).Byte(2).Byte(2).Double(kInfBits).Double(
        kOneBits);
    WriteBytes(dir / "override_policy.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(1);
    b.Byte(1).Byte(0).Byte(2).Byte(3).Byte(4)
        .Double(kOneBits).Double(kOneBits).Double(kInfBits).Double(kNanBits);
    WriteBytes(dir / "wrong_width.bin", b.bytes);  // 4 features vs 2
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);
    b.Byte(0).Byte(0).Byte(0).Byte(3).Byte(2).Double(kOneBits).Double(
        kOneBits);  // service byte 0 -> -1: out of range
    WriteBytes(dir / "out_of_range_service.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(1).Byte(1);
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kOneBits).Double(
        kOneBits);               // score
    b.Byte(5).Byte(0).Byte(2);   // swap
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
        kOneBits);               // score with NaN after swap
    b.Byte(3).Byte(0).Byte(2);   // flush
    b.Byte(2).Byte(0).Byte(2);   // close
    b.Byte(4).Byte(0).Byte(2);   // stats
    WriteBytes(dir / "mixed_ops.bin", b.bytes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "corpus";
  for (const char* sub : {"parse_csv", "detector_load", "serve_request"}) {
    fs::create_directories(root / sub);
  }
  WriteParseCsvCorpus(root / "parse_csv");
  WriteDetectorLoadCorpus(root / "detector_load");
  WriteServeRequestCorpus(root / "serve_request");
  size_t count = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) ++count;
  }
  std::printf("wrote %zu seed inputs under %s\n", count,
              root.string().c_str());
  return 0;
}
