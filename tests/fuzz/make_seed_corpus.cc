// Regenerates tests/fuzz/corpus/ — the committed seed inputs replayed by
// fuzz_replay_test and used as the libFuzzer starting corpus.
//
//   ./build/tests/fuzz/mace_fuzz_seedgen [output_root]
//
// Run it after changing the model file format or the serve byte
// protocol, then commit the outputs. Seeds fall into three groups per
// target: well-formed inputs (coverage anchors), targeted malformations
// (one per Load/Parse validation branch), and regression inputs pinning
// previously fixed parser bugs (e.g. the "1.5abc" trailing-garbage
// accept in ParseCell).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "fuzz/fuzz_env.h"
#include "history/snapshot.h"
#include "history/store.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace {

namespace fs = std::filesystem;

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MACE_CHECK(out.good()) << "cannot open " << path.string();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  MACE_CHECK(out.good()) << "cannot write " << path.string();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

/// Replaces token `index` (space-separated) of `line`.
std::string EditToken(const std::string& line, size_t index,
                      const std::string& replacement) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  MACE_CHECK(index < tokens.size())
      << "token " << index << " of '" << line << "'";
  tokens[index] = replacement;
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

// -- detector_load ---------------------------------------------------------

/// Model file line layout (see mace_serialization.cc): 0 magic, 1 config,
/// 2 "features services", then per service [means, stddevs, bases], then
/// param tensor count and one vector line per tensor. TinyModel has 2
/// services, so params start at line 9. Config line field 0 is window,
/// field 10 is freq_kernel.
void WriteDetectorLoadCorpus(const fs::path& dir) {
  const std::string model_path = mace::fuzz::ScratchPath("seedgen_model");
  MACE_CHECK_OK(mace::fuzz::TinyModel()->Save(model_path));
  std::ifstream in(model_path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string valid = buffer.str();
  std::remove(model_path.c_str());
  const std::vector<std::string> lines = SplitLines(valid);
  MACE_CHECK(lines.size() > 10) << "unexpected model layout";

  auto mutate = [&](size_t line, size_t token, const std::string& value) {
    std::vector<std::string> copy = lines;
    copy[line] = EditToken(copy[line], token, value);
    return JoinLines(copy);
  };

  WriteBytes(dir / "valid.mace", valid);
  WriteBytes(dir / "empty.mace", "");
  WriteBytes(dir / "garbage.mace", "\x7f\x45\x4c\x46\x01\x01\xff\x00 not a model\n");
  WriteBytes(dir / "bad_magic.mace", mutate(0, 0, "MACEv9"));
  WriteBytes(dir / "truncated_header.mace", valid.substr(0, 20));
  WriteBytes(dir / "truncated_params.mace", valid.substr(0, valid.size() / 2));
  WriteBytes(dir / "huge_window.mace", mutate(1, 0, "99999"));
  WriteBytes(dir / "negative_window.mace", mutate(1, 0, "-5"));
  WriteBytes(dir / "freq_kernel_exceeds_subspace.mace", mutate(1, 10, "7"));
  // Regression: Load once compared freq_kernel against the 2k
  // coefficient columns instead of the k amplitude columns the model
  // actually convolves, so freq_kernel = num_bases + 1 passed validation
  // and CHECK-aborted inside MaceModel.
  WriteBytes(dir / "freq_kernel_amplitude_regression.mace",
             mutate(1, 10, "4"));
  WriteBytes(dir / "zero_services.mace", mutate(2, 1, "0"));
  WriteBytes(dir / "huge_services.mace", mutate(2, 1, "99999"));
  WriteBytes(dir / "huge_features.mace", mutate(2, 0, "99999"));
  WriteBytes(dir / "huge_count.mace", mutate(3, 0, "99999999999"));
  WriteBytes(dir / "means_size_mismatch.mace", mutate(3, 0, "1"));
  WriteBytes(dir / "nan_stddev.mace", mutate(4, 1, "nan"));
  WriteBytes(dir / "zero_stddev.mace", mutate(4, 2, "0"));
  WriteBytes(dir / "too_many_bases.mace", mutate(5, 0, "7"));
  WriteBytes(dir / "base_out_of_range.mace", mutate(5, 1, "9999"));
  // Service 1's bases (line 8) shrunk to 2 indices: coefficient width
  // differs from service 0 — the cross-service consistency branch.
  {
    std::vector<std::string> copy = lines;
    copy[8] = "2 0 1";
    WriteBytes(dir / "inconsistent_subspace.mace", JoinLines(copy));
  }
  WriteBytes(dir / "param_count_mismatch.mace", mutate(9, 0, "3"));
  // Loads successfully with a NaN weight: exercises the post-load
  // scoring probe of the fuzz target.
  WriteBytes(dir / "nan_param.mace", mutate(10, 2, "nan"));
}

// -- parse_csv -------------------------------------------------------------

void WriteParseCsvCorpus(const fs::path& dir) {
  WriteBytes(dir / "basic.csv", "a,b\n1,2\n3,4\n");
  WriteBytes(dir / "no_header.csv", "1,2\n3,4\n");
  WriteBytes(dir / "empty.csv", "");
  WriteBytes(dir / "header_only.csv", "a,b\n");
  // Regression: ParseCell once accepted trailing garbage after the
  // number ("1.5abc" parsed as 1.5).
  WriteBytes(dir / "trailing_garbage.csv", "a,b\n1.5abc,2\n");
  WriteBytes(dir / "nan_inf.csv", "f0,f1\nnan,1\ninf,-inf\n1,2\n");
  WriteBytes(dir / "ragged.csv", "a,b\n1\n2,3,4\n");
  WriteBytes(dir / "empty_cell.csv", "a,b\n1,\n");
  WriteBytes(dir / "huge_exponent.csv", "a\n1e999\n-1e999\n");
  WriteBytes(dir / "whitespace.csv", " 1 , 2 \n 3 ,4\n");
  WriteBytes(dir / "signs.csv", "a,b\n+1,-2.5e-3\n-0,.5\n");
  WriteBytes(dir / "hex_and_words.csv", "a\n0x10\ninfinity\nNAN\n");
  WriteBytes(dir / "crlf.csv", "a,b\r\n1,2\r\n");
  WriteBytes(dir / "all_nan_column.csv", "a,b\nnan,1\nnan,2\nnan,3\n");
}

// -- serve_request ---------------------------------------------------------

/// Mirrors the ByteReader decode of fuzz_serve_request.cc.
struct StreamBuilder {
  std::string bytes;
  StreamBuilder& Byte(uint8_t b) {
    bytes += static_cast<char>(b);
    return *this;
  }
  StreamBuilder& Double(uint64_t bits) {
    for (int i = 7; i >= 0; --i) {
      bytes += static_cast<char>((bits >> (8 * i)) & 0xff);
    }
    return *this;
  }
};

constexpr uint64_t kNanBits = 0x7ff8000000000000ull;
constexpr uint64_t kInfBits = 0x7ff0000000000000ull;
constexpr uint64_t kOneBits = 0x3ff0000000000000ull;

void WriteServeRequestCorpus(const fs::path& dir) {
  WriteBytes(dir / "empty.bin", "");
  // [shard][config policy] then ops [kind][tenant][service]...
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);  // 1 shard, reject
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
        kOneBits);  // Score t0 svc1, no override, [nan, 1.0]
    WriteBytes(dir / "nan_score_reject.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(1).Byte(1);  // 2 shards, impute
    for (int i = 0; i < 6; ++i) {
      b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
          kOneBits);
    }
    WriteBytes(dir / "nan_score_impute.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(2);  // propagate: fill a window past one NaN row
    for (int i = 0; i < 10; ++i) {
      const uint64_t first = i == 3 ? kNanBits : kOneBits;
      b.Byte(0).Byte(1).Byte(2).Byte(3).Byte(2).Double(first).Double(
          kOneBits);
    }
    WriteBytes(dir / "nan_score_propagate.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);  // config reject, request overrides to propagate
    b.Byte(0).Byte(2).Byte(2).Byte(2).Byte(2).Double(kInfBits).Double(
        kOneBits);
    WriteBytes(dir / "override_policy.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(1);
    b.Byte(1).Byte(0).Byte(2).Byte(3).Byte(4)
        .Double(kOneBits).Double(kOneBits).Double(kInfBits).Double(kNanBits);
    WriteBytes(dir / "wrong_width.bin", b.bytes);  // 4 features vs 2
  }
  {
    StreamBuilder b;
    b.Byte(0).Byte(0);
    b.Byte(0).Byte(0).Byte(0).Byte(3).Byte(2).Double(kOneBits).Double(
        kOneBits);  // service byte 0 -> -1: out of range
    WriteBytes(dir / "out_of_range_service.bin", b.bytes);
  }
  {
    StreamBuilder b;
    b.Byte(1).Byte(1);
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kOneBits).Double(
        kOneBits);               // score
    b.Byte(5).Byte(0).Byte(2);   // swap
    b.Byte(0).Byte(0).Byte(2).Byte(3).Byte(2).Double(kNanBits).Double(
        kOneBits);               // score with NaN after swap
    b.Byte(3).Byte(0).Byte(2);   // flush
    b.Byte(2).Byte(0).Byte(2);   // close
    b.Byte(4).Byte(0).Byte(2);   // stats
    WriteBytes(dir / "mixed_ops.bin", b.bytes);
  }
}

// -- history_snapshot ------------------------------------------------------

/// MHSNAPv1 layout (see history/snapshot.h): 64-byte header with the
/// CRC-32 of bytes [24, end) at offset 20, tenant index, then 16-byte
/// records. Targeted malformations re-fix the CRC so they reach the
/// validation branch they aim at instead of dying on the checksum.
void WriteHistorySnapshotCorpus(const fs::path& dir) {
  mace::history::HistoryStore store(
      mace::history::HistoryConfig{8, 1.0});
  const auto a = store.Intern("svc-a");
  const auto b = store.Intern("svc-b");
  for (int64_t t = 0; t < 12; ++t) {  // 12 > capacity 8: 'a' has wrapped
    store.Append(a, t, 0.5 + 0.25 * static_cast<double>(t % 4));
    if (t % 2 == 0) store.Append(b, t, t >= 6 ? 2.5 : 0.25);
  }
  const std::string path = mace::fuzz::ScratchPath("seedgen_snapshot");
  MACE_CHECK_OK(mace::history::WriteSnapshot(store, path, 1.0));
  std::ifstream in(path, std::ios::binary);
  std::string valid((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  MACE_CHECK(valid.size() > 64) << "unexpected snapshot layout";

  auto with_patch = [&](size_t offset, std::string bytes) {
    std::string copy = valid;
    MACE_CHECK(offset + bytes.size() <= copy.size());
    copy.replace(offset, bytes.size(), bytes);
    // Re-fix the checksum so the mutation reaches its validation branch.
    const uint32_t crc = mace::history::Crc32(copy.data() + 24,
                                              copy.size() - 24);
    copy.replace(20, 4,
                 std::string(reinterpret_cast<const char*>(&crc), 4));
    return copy;
  };
  auto u32 = [](uint32_t v) {
    return std::string(reinterpret_cast<const char*>(&v), 4);
  };
  auto u64 = [](uint64_t v) {
    return std::string(reinterpret_cast<const char*>(&v), 8);
  };

  WriteBytes(dir / "valid.snap", valid);
  WriteBytes(dir / "empty.snap", "");
  WriteBytes(dir / "truncated_header.snap", valid.substr(0, 40));
  WriteBytes(dir / "bad_magic.snap", "MHSNAPv9" + valid.substr(8));
  // Stored CRC left stale on purpose: the checksum branch itself.
  {
    std::string copy = valid;
    copy[valid.size() - 1] = static_cast<char>(copy[valid.size() - 1] ^ 1);
    WriteBytes(dir / "crc_mismatch.snap", copy);
  }
  WriteBytes(dir / "bad_version.snap", with_patch(8, u32(2)));
  WriteBytes(dir / "bad_record_size.snap", with_patch(12, u32(24)));
  WriteBytes(dir / "huge_tenant_count.snap",
             with_patch(16, u32(0xffffffffu)));
  WriteBytes(dir / "total_records_mismatch.snap", with_patch(24, u64(1)));
  // total_records * sizeof(Record) wraps to 0 mod 2^64 while
  // records_offset points at the file's end: the section-size check must
  // reject this by division, not by comparing against the wrapped product.
  WriteBytes(dir / "total_records_overflow.snap",
             with_patch(24, u64(uint64_t{1} << 60) + u64(valid.size())));
  WriteBytes(dir / "unaligned_records_offset.snap",
             with_patch(32, u64(65)));
  WriteBytes(dir / "records_offset_past_end.snap",
             with_patch(32, u64(valid.size() + 16)));
  // Index entry 0's name length blown past the index region.
  WriteBytes(dir / "huge_name_len.snap", with_patch(64, u32(100000)));
  // Truncated to the middle of the records section (CRC re-fixed so the
  // size consistency branch fires, not the checksum).
  {
    std::string copy = valid.substr(0, valid.size() - 8);
    const uint32_t crc = mace::history::Crc32(copy.data() + 24,
                                              copy.size() - 24);
    copy.replace(20, 4,
                 std::string(reinterpret_cast<const char*>(&crc), 4));
    WriteBytes(dir / "truncated_records.snap", copy);
  }
  // Out-of-order timestamps inside tenant 0's records: swap the first
  // two records' timestamp fields (records start right after the index).
  {
    const size_t records_offset = [&] {
      uint64_t v = 0;
      std::memcpy(&v, valid.data() + 32, 8);
      return static_cast<size_t>(v);
    }();
    std::string copy = valid;
    std::string first = copy.substr(records_offset, 8);
    copy.replace(records_offset, 8, copy.substr(records_offset + 16, 8));
    copy.replace(records_offset + 16, 8, first);
    const uint32_t crc = mace::history::Crc32(copy.data() + 24,
                                              copy.size() - 24);
    copy.replace(20, 4,
                 std::string(reinterpret_cast<const char*>(&crc), 4));
    WriteBytes(dir / "unordered_timestamps.snap", copy);
  }
  // A parsing snapshot with a NaN score: exercises the post-open query
  // probe of the fuzz target (severity must stay finite).
  {
    const size_t records_offset = [&] {
      uint64_t v = 0;
      std::memcpy(&v, valid.data() + 32, 8);
      return static_cast<size_t>(v);
    }();
    const uint32_t nan_bits = 0x7fc00000u;
    WriteBytes(dir / "nan_score.snap",
               with_patch(records_offset + 8, u32(nan_bits)));
  }
}

// -- wire_frame ------------------------------------------------------------

/// MWIREv1 seeds (see wire/frame.h): the first corpus byte picks the
/// fuzz target's chunking, then framed bytes follow. Well-formed frames
/// anchor coverage; the malformations hit each header/CRC validation
/// branch and the payload decoders behind valid framing.
void WriteWireFrameCorpus(const fs::path& dir) {
  auto framed = [](mace::wire::FrameType type, uint64_t request_id,
                   const std::vector<uint8_t>& payload) {
    std::vector<uint8_t> out;
    mace::wire::AppendFrame(&out, type, request_id, payload);
    return std::string(out.begin(), out.end());
  };
  auto with_chunking = [](uint8_t chunk_selector, const std::string& body) {
    return std::string(1, static_cast<char>(chunk_selector)) + body;
  };

  std::vector<uint8_t> score_payload;
  {
    mace::wire::ScoreRequest request;
    request.tenant = "tenant-a";
    request.service = 1;
    request.values = {1.0, 2.0};
    mace::wire::EncodeScoreRequest(request, &score_payload);
  }
  std::vector<uint8_t> response_payload;
  {
    mace::wire::ScoreResponse response;
    response.scores = {0.25, 0.75};
    response.first_step = 40;
    mace::wire::EncodeScoreResponse(response, &response_payload);
  }
  std::vector<uint8_t> close_payload;
  {
    mace::wire::CloseRequest request;
    request.tenant = "tenant-a";
    request.service = 1;
    mace::wire::EncodeCloseRequest(request, &close_payload);
  }
  std::vector<uint8_t> stats_payload;
  mace::wire::EncodeStatsResponse("serve gen 1 | q 0", &stats_payload);

  WriteBytes(dir / "empty.bin", "");
  WriteBytes(dir / "ping.bin",
             with_chunking(3, framed(mace::wire::FrameType::kPing, 7, {})));
  // Byte-at-a-time chunking across a multi-frame stream: reassembly.
  WriteBytes(
      dir / "pipelined_chunked.bin",
      with_chunking(
          0, framed(mace::wire::FrameType::kScoreRequest, 1, score_payload) +
                 framed(mace::wire::FrameType::kScoreRequest, 2,
                        score_payload) +
                 framed(mace::wire::FrameType::kCloseRequest, 3,
                        close_payload)));
  WriteBytes(dir / "score_response.bin",
             with_chunking(2, framed(mace::wire::FrameType::kScoreResponse,
                                     9, response_payload)));
  WriteBytes(dir / "stats_response.bin",
             with_chunking(1, framed(mace::wire::FrameType::kStatsResponse,
                                     4, stats_payload)));

  const std::string valid =
      framed(mace::wire::FrameType::kScoreRequest, 11, score_payload);
  auto mutated = [&](size_t offset, uint8_t byte) {
    std::string copy = valid;
    copy[offset] = static_cast<char>(byte);
    return copy;
  };
  WriteBytes(dir / "bad_magic.bin", with_chunking(3, mutated(0, 'X')));
  WriteBytes(dir / "bad_version.bin", with_chunking(3, mutated(4, 9)));
  WriteBytes(dir / "bad_type.bin", with_chunking(3, mutated(5, 0xee)));
  WriteBytes(dir / "nonzero_reserved.bin",
             with_chunking(3, mutated(6, 1)));
  // Payload length pushed past kMaxPayload: must be rejected before any
  // allocation sized from it.
  WriteBytes(dir / "oversize_length.bin",
             with_chunking(3, mutated(19, 0xff)));
  WriteBytes(dir / "crc_mismatch.bin",
             with_chunking(3, mutated(valid.size() - 1,
                                      static_cast<uint8_t>(valid.back()) ^
                                          0x01)));
  WriteBytes(dir / "truncated_header.bin",
             with_chunking(3, valid.substr(0, 10)));
  WriteBytes(dir / "truncated_payload.bin",
             with_chunking(3, valid.substr(0, valid.size() - 3)));
  // Valid framing, hostile payload: a score request whose value count
  // claims more doubles than the payload holds.
  {
    std::vector<uint8_t> payload = score_payload;
    payload[12] = 0xff;  // value count low byte (after policy/prio/rsvd/svc/tlen)
    std::vector<uint8_t> out;
    mace::wire::AppendFrame(&out, mace::wire::FrameType::kScoreRequest, 5,
                            payload);
    WriteBytes(dir / "payload_count_lies.bin",
               with_chunking(3, std::string(out.begin(), out.end())));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "corpus";
  for (const char* sub : {"parse_csv", "detector_load", "serve_request",
                          "history_snapshot", "wire_frame"}) {
    fs::create_directories(root / sub);
  }
  WriteParseCsvCorpus(root / "parse_csv");
  WriteDetectorLoadCorpus(root / "detector_load");
  WriteServeRequestCorpus(root / "serve_request");
  WriteHistorySnapshotCorpus(root / "history_snapshot");
  WriteWireFrameCorpus(root / "wire_frame");
  size_t count = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) ++count;
  }
  std::printf("wrote %zu seed inputs under %s\n", count,
              root.string().c_str());
  return 0;
}
