// Fuzz target: the MWIREv1 frame decoder and payload codecs — the bytes
// a hostile peer can put on a serving socket. The input's first byte
// picks the chunk size the stream is fed in (1, 7, 64, or all at once),
// so reassembly across arbitrary chunk boundaries is part of the
// surface, then every completed frame's payload runs through the decoder
// matching its type (and the router's routing peek for score requests).
// Any outcome except an abort/hang/sanitizer report is a pass: malformed
// framing must surface as a Status, malformed payloads as a Status, and
// trailing partial frames as "need more bytes".

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_env.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::fuzz {

void FuzzWireFrame(const uint8_t* data, size_t size) {
  if (size == 0) return;
  constexpr size_t kChunks[] = {1, 7, 64, ~size_t{0}};
  const size_t chunk = kChunks[data[0] % 4];
  ++data;
  --size;

  wire::FrameDecoder decoder;
  size_t fed = 0;
  bool dead = false;
  while (!dead) {
    auto next = decoder.Next();
    if (!next.ok()) break;  // connection-fatal framing error: done
    if (next->has_value()) {
      const wire::OwnedFrame& frame = **next;
      const uint8_t* payload = frame.payload.data();
      const size_t payload_size = frame.payload.size();
      switch (frame.type) {
        case wire::FrameType::kScoreRequest:
          (void)wire::DecodeScoreRequest(payload, payload_size);
          (void)wire::PeekScoreRouting(payload, payload_size);
          break;
        case wire::FrameType::kScoreResponse:
        case wire::FrameType::kCloseResponse:
          (void)wire::DecodeScoreResponse(payload, payload_size);
          break;
        case wire::FrameType::kCloseRequest:
          (void)wire::DecodeCloseRequest(payload, payload_size);
          break;
        case wire::FrameType::kStatsResponse:
          (void)wire::DecodeStatsResponse(payload, payload_size);
          break;
        case wire::FrameType::kPing:
        case wire::FrameType::kPong:
        case wire::FrameType::kStatsRequest:
          break;
      }
      continue;
    }
    if (fed >= size) break;  // stream exhausted mid-frame: fine
    const size_t n = std::min(chunk, size - fed);
    decoder.Append(data + fed, n);
    fed += n;
  }
}

}  // namespace mace::fuzz

#ifdef MACE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mace::fuzz::FuzzWireFrame(data, size);
  return 0;
}
#endif
