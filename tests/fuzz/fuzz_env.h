#ifndef MACE_TESTS_FUZZ_FUZZ_ENV_H_
#define MACE_TESTS_FUZZ_FUZZ_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/mace_detector.h"

namespace mace::fuzz {

/// One fuzz entry point per untrusted-input surface (DESIGN.md §11).
/// Each must be total: any byte string returns normally — a Status error
/// is the expected outcome for bad input; an abort, hang, or sanitizer
/// report is a finding. The libFuzzer executables (MACE_FUZZ builds) and
/// the always-on corpus-replay regression test share these entry points,
/// so every fuzzer-found input becomes a replayable regression.
void FuzzParseCsv(const uint8_t* data, size_t size);
void FuzzDetectorLoad(const uint8_t* data, size_t size);
void FuzzServeRequest(const uint8_t* data, size_t size);
void FuzzHistorySnapshot(const uint8_t* data, size_t size);
void FuzzWireFrame(const uint8_t* data, size_t size);

/// A deterministic tiny fitted detector (window 8, 2 services x 2
/// features, 1 epoch), fitted once per process: the model behind the
/// serve fuzzer's sessions and the seed-corpus generator's valid file.
std::shared_ptr<const core::MaceDetector> TinyModel();

/// Per-process scratch file path for targets that must round-trip input
/// through disk (Load is path-based); `tag` keeps targets from
/// clobbering each other inside one process.
std::string ScratchPath(const std::string& tag);

}  // namespace mace::fuzz

#endif  // MACE_TESTS_FUZZ_FUZZ_ENV_H_
