// Fuzz target: history snapshot deserialization. A snapshot file is
// operator-supplied input to `mace_cli history` (and anything else that
// opens a fleet snapshot), so SnapshotReader must be total: any byte
// string either parses or returns a descriptive Status. When the input
// does parse, every query engine entry point runs over it — a snapshot
// that merely *opens* cannot smuggle an index that aborts the first
// top-K or correlation pass.

#include <cstdint>
#include <vector>

#include "fuzz/fuzz_env.h"
#include "history/query.h"
#include "history/snapshot.h"

namespace mace::fuzz {

void FuzzHistorySnapshot(const uint8_t* data, size_t size) {
  Result<history::SnapshotReader> reader =
      history::SnapshotReader::FromBuffer(
          std::vector<uint8_t>(data, data + size));
  if (!reader.ok()) return;

  // Bound the probe: a validly-parsing snapshot can still declare a huge
  // fleet, and querying it would stall the fuzzer rather than find
  // anything.
  if (reader->total_records() > 4096 || reader->NumTenants() > 256) return;

  (void)history::TopTenants(*reader, -64, 1 << 20, 8);
  if (reader->NumTenants() > 0) {
    (void)history::AnomalyRateSeries(*reader, reader->TenantName(0), 0,
                                     1 << 16, 16);
  }
  history::CorrelationOptions options;
  options.window_width = 16;
  options.min_jaccard = 0.25;
  options.max_tenants = 64;
  (void)history::CorrelateAnomalies(*reader, 0, 1 << 16, options);
}

}  // namespace mace::fuzz

#ifdef MACE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mace::fuzz::FuzzHistorySnapshot(data, size);
  return 0;
}
#endif
