// Fuzz target: CSV ingestion. Covers ParseCsv (both header modes) and,
// for inputs that parse, the SanitizeSeries pass every CSV load runs
// under each non-finite policy — the exact pipeline of
// ts::TimeSeriesFromCsv minus the file round-trip.

#include <string>
#include <vector>

#include "common/csv.h"
#include "fuzz/fuzz_env.h"
#include "ts/sanitize.h"
#include "ts/time_series.h"

namespace mace::fuzz {

void FuzzParseCsv(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  for (const bool has_header : {true, false}) {
    Result<CsvTable> table = ParseCsv(text, has_header);
    if (!table.ok() || table->rows.empty() || table->rows.front().empty()) {
      continue;
    }
    ts::TimeSeries series(table->rows, {});
    for (const ts::NonFinitePolicy policy :
         {ts::NonFinitePolicy::kReject, ts::NonFinitePolicy::kImpute,
          ts::NonFinitePolicy::kPropagate}) {
      ts::SanitizeStats stats;
      std::vector<uint8_t> mask;
      (void)ts::SanitizeSeries(series, policy, &stats, &mask);
    }
  }
}

}  // namespace mace::fuzz

#ifdef MACE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mace::fuzz::FuzzParseCsv(data, size);
  return 0;
}
#endif
