#include "fuzz/fuzz_env.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/check.h"
#include "ts/time_series.h"

namespace mace::fuzz {
namespace {

/// Two-feature synthetic service: closed-form sinusoids (no RNG), so the
/// fitted TinyModel — and every corpus file derived from it — is
/// bit-reproducible across runs and machines.
ts::TimeSeries SyntheticSeries(size_t length, double phase, bool labeled) {
  std::vector<std::vector<double>> values;
  values.reserve(length);
  for (size_t t = 0; t < length; ++t) {
    const double x = static_cast<double>(t);
    values.push_back({std::sin(0.7 * x + phase),
                      std::cos(0.3 * x + 2.0 * phase) + 0.01 * x});
  }
  std::vector<uint8_t> labels;
  if (labeled) labels.assign(length, 0);
  return ts::TimeSeries(std::move(values), std::move(labels));
}

}  // namespace

std::shared_ptr<const core::MaceDetector> TinyModel() {
  static const std::shared_ptr<const core::MaceDetector> model = [] {
    core::MaceConfig config;
    config.window = 8;
    config.train_stride = 2;
    config.score_stride = 4;
    config.num_bases = 3;
    config.time_kernel = 3;
    config.freq_kernel = 3;  // must be <= num_bases (amplitude columns)
    config.hidden_channels = 4;
    config.characterization_channels = 2;
    config.epochs = 1;
    auto detector = std::make_shared<core::MaceDetector>(config);
    std::vector<ts::ServiceData> services(2);
    for (size_t s = 0; s < services.size(); ++s) {
      services[s].name = "svc" + std::to_string(s);
      services[s].train =
          SyntheticSeries(48, 0.5 * static_cast<double>(s + 1), false);
      services[s].test =
          SyntheticSeries(24, 0.5 * static_cast<double>(s + 1), true);
    }
    MACE_CHECK_OK(detector->Fit(services));
    return detector;
  }();
  return model;
}

std::string ScratchPath(const std::string& tag) {
  static const std::string dir =
      std::filesystem::temp_directory_path().string();
  return dir + "/mace_fuzz_" + std::to_string(::getpid()) + "_" + tag;
}

}  // namespace mace::fuzz
