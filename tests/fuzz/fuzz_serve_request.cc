// Fuzz target: the serve frontend. Decodes the input as a request
// stream against a fresh ServeFrontend on the shared TinyModel —
// score/submit ops carry raw 8-byte doubles (so NaN/Inf and every other
// bit pattern arrive as observations), interleaved with close, flush,
// stats and hot-swap ops, under fuzzer-chosen shard counts and
// non-finite policies (both the config default and per-request
// overrides).
//
// Byte format (every prefix decodes; reads past the end yield 0):
//   [shard byte][config-policy byte] then ops:
//   [kind][tenant][service] + for score/submit:
//   [request-policy][n][n * 8 raw double bytes]
//   kind%6: 0 Score, 1 Submit, 2 Close, 3 Flush, 4 Stats, 5 Swap.
//   service decodes to -1..2, so both out-of-range sides are exercised
//   (the model holds services 0..1).

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/mace_detector.h"
#include "fuzz/fuzz_env.h"
#include "serve/frontend.h"

namespace mace::fuzz {
namespace {

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  bool Done() const { return pos >= size; }
  double NextDouble() {
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits = (bits << 8) | Next();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

}  // namespace

void FuzzServeRequest(const uint8_t* data, size_t size) {
  ByteReader in{data, size};
  serve::ServeConfig config;
  config.num_shards = 1 + in.Next() % 2;
  config.non_finite_policy =
      static_cast<ts::NonFinitePolicy>(in.Next() % 3);
  auto frontend = serve::ServeFrontend::Create(TinyModel(), config);
  if (!frontend.ok()) return;

  int ops = 0;
  while (!in.Done() && ++ops <= 32) {
    const uint8_t kind = in.Next() % 6;
    const std::string tenant = "t" + std::to_string(in.Next() % 4);
    const int service = static_cast<int>(in.Next() % 4) - 1;
    switch (kind) {
      case 0:
      case 1: {
        serve::RequestOptions options;
        const uint8_t p = in.Next() % 4;  // 3 = no override
        if (p < 3) {
          options.non_finite_policy = static_cast<ts::NonFinitePolicy>(p);
        }
        std::vector<double> observation(in.Next() % 5);
        for (double& v : observation) v = in.NextDouble();
        if (kind == 0) {
          (void)(*frontend)->Score(tenant, service, std::move(observation),
                                   options);
        } else {
          (void)(*frontend)->Submit(tenant, service, std::move(observation),
                                    options);
        }
        break;
      }
      case 2:
        (void)(*frontend)->Close(tenant, service);
        break;
      case 3:
        (*frontend)->Flush();
        break;
      case 4:
        (void)(*frontend)->Stats();
        break;
      case 5:
        (void)(*frontend)->Swap(TinyModel());
        break;
    }
  }
}

}  // namespace mace::fuzz

#ifdef MACE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mace::fuzz::FuzzServeRequest(data, size);
  return 0;
}
#endif
