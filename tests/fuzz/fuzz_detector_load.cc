// Fuzz target: model deserialization. Round-trips the input through a
// scratch file into MaceDetector::Load (the hot-reload path takes
// operator-supplied files), then — when the loaded geometry is small —
// scores a NaN-bearing probe under every non-finite policy, so a file
// that merely *loads* cannot smuggle state that aborts the first Score.

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzz_env.h"
#include "ts/sanitize.h"
#include "ts/time_series.h"

namespace mace::fuzz {

void FuzzDetectorLoad(const uint8_t* data, size_t size) {
  const std::string path = ScratchPath("model");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  Result<core::MaceDetector> detector = core::MaceDetector::Load(path);
  std::remove(path.c_str());
  if (!detector.ok()) return;

  // Bound the probe to small geometries: a large window/feature count can
  // be a legitimate model, and scoring it would stall the fuzzer rather
  // than find anything.
  const core::MaceConfig& config = detector->config();
  const size_t num_features = detector->scalers().front().means().size();
  if (config.window > 32 || num_features > 8) return;
  const size_t length = static_cast<size_t>(config.window) + 3;
  std::vector<std::vector<double>> values(
      length, std::vector<double>(num_features, 0.25));
  values[1][0] = std::numeric_limits<double>::quiet_NaN();
  const ts::TimeSeries probe(std::move(values), {});
  for (const ts::NonFinitePolicy policy :
       {ts::NonFinitePolicy::kReject, ts::NonFinitePolicy::kImpute,
        ts::NonFinitePolicy::kPropagate}) {
    detector->set_non_finite_policy(policy);
    (void)detector->Score(0, probe);
  }
}

}  // namespace mace::fuzz

#ifdef MACE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mace::fuzz::FuzzDetectorLoad(data, size);
  return 0;
}
#endif
