// Anomaly-history subsystem tests (DESIGN.md §12): the store's ring
// semantics and concurrency contract, the query engine pinned against
// brute-force references, the MHSNAPv1 snapshot round-trip, and the
// rejection of corrupt snapshots with descriptive errors. The
// concurrent-append tests are the tsan target for the `history` label.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "core/streaming.h"
#include "history/query.h"
#include "history/record.h"
#include "history/snapshot.h"
#include "history/store.h"
#include "serve/frontend.h"
#include "ts/generator.h"

namespace mace::history {
namespace {

std::string ScratchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("mace_history_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

std::vector<Record> AllRecords(const HistorySource& source, size_t index) {
  std::vector<Record> records;
  source.VisitRange(index, INT64_MIN, INT64_MAX, [&](RecordSpan s) {
    records.insert(records.end(), s.data, s.data + s.size);
  });
  return records;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---- store ---------------------------------------------------------------

TEST(HistoryStoreTest, AppendSetsAnomalyBitAgainstLiveThreshold) {
  HistoryStore store(HistoryConfig{16, 1.0});
  const auto id = store.Intern("svc");
  store.Append(id, 0, 0.5);   // below
  store.Append(id, 1, 1.0);   // equal: strictly-greater rule, not anomalous
  store.Append(id, 2, 1.5);   // above
  store.SetThreshold(id, 2.0);
  store.Append(id, 3, 1.5);   // above the old threshold, below the new one

  const auto records = AllRecords(store, 0);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].anomaly, 0);
  EXPECT_EQ(records[1].anomaly, 0);
  EXPECT_EQ(records[2].anomaly, 1);
  EXPECT_EQ(records[3].anomaly, 0);  // new threshold applied going forward
  EXPECT_EQ(store.threshold(id), 2.0);
}

TEST(HistoryStoreTest, WraparoundKeepsNewestCapacityRecords) {
  HistoryStore store(HistoryConfig{4, 10.0});
  const auto id = store.Intern("svc");
  for (int64_t t = 0; t < 11; ++t) {
    store.Append(id, t, static_cast<double>(t));
  }
  EXPECT_EQ(store.appended(id), 11u);

  const auto records = AllRecords(store, 0);
  ASSERT_EQ(records.size(), 4u);  // capacity, not lifetime count
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp, static_cast<int64_t>(7 + i));
    EXPECT_FLOAT_EQ(records[i].score, static_cast<float>(7 + i));
  }
}

TEST(HistoryStoreTest, VisitRangeFiltersAcrossTheWrapSeam) {
  HistoryStore store(HistoryConfig{6, 10.0});
  const auto id = store.Intern("svc");
  for (int64_t t = 0; t < 10; ++t) {  // retained: 4..9, seam inside the ring
    store.Append(id, t, 0.0);
  }
  std::vector<int64_t> seen;
  size_t spans = 0;
  store.VisitRange(0, 5, 8, [&](RecordSpan s) {
    ++spans;
    for (size_t j = 0; j < s.size; ++j) seen.push_back(s.data[j].timestamp);
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{5, 6, 7, 8}));
  EXPECT_LE(spans, 2u);  // at most two physical runs
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(HistoryStoreTest, NonFiniteScoresAreSkippedNotStored) {
  HistoryStore store(HistoryConfig{8, 1.0});
  const auto id = store.Intern("svc");
  store.Append(id, 0, std::nan(""));
  store.Append(id, 1, std::numeric_limits<double>::infinity());
  store.Append(id, 2, 0.5);
  const auto records = AllRecords(store, 0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 2);
}

TEST(HistoryStoreTest, NextTimestampIsOnePastNewestStoredRecord) {
  HistoryStore store(HistoryConfig{4, 1.0});
  const auto id = store.Intern("svc");
  EXPECT_EQ(store.next_timestamp(id), 0);
  store.Append(id, 3, 0.5);
  EXPECT_EQ(store.next_timestamp(id), 4);
  // A skipped non-finite score advances nothing — which is why appended()
  // is not a safe re-attach base.
  store.Append(id, 9, std::nan(""));
  EXPECT_EQ(store.next_timestamp(id), 4);
  for (int64_t t = 10; t < 16; ++t) store.Append(id, t, 0.5);  // wraps
  EXPECT_EQ(store.next_timestamp(id), 16);
}

TEST(HistoryStoreTest, InternIsIdempotentAndIdsAreDense) {
  HistoryStore store(HistoryConfig{});
  const auto a = store.Intern("a");
  const auto b = store.Intern("b");
  EXPECT_EQ(store.Intern("a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.NumTenants(), 2u);
  EXPECT_EQ(store.TenantName(a), "a");
  EXPECT_EQ(store.TenantName(b), "b");
}

// Lossless, ordered appends from concurrent writers: one thread per
// tenant (the serve model — a tenant is pinned to one shard) plus
// concurrent Intern traffic on the shared registry. Run under tsan via
// `ctest -L history` in a -DMACE_SANITIZE=thread build.
TEST(HistoryStoreTest, ConcurrentAppendsAreLosslessAndOrdered) {
  constexpr int kThreads = 4;
  constexpr int64_t kSteps = 5000;
  HistoryStore store(HistoryConfig{static_cast<size_t>(kSteps), 0.5});

  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&store, w] {
      const auto id = store.Intern("tenant-" + std::to_string(w));
      for (int64_t t = 0; t < kSteps; ++t) {
        // Interleave registry reads with appends to stress the
        // shared_mutex table against the per-tenant mutexes.
        if (t % 512 == 0) store.Intern("tenant-" + std::to_string(w));
        store.Append(id, t, t % 7 == 0 ? 1.0 : 0.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(store.NumTenants(), static_cast<size_t>(kThreads));
  for (int w = 0; w < kThreads; ++w) {
    const auto id = store.Intern("tenant-" + std::to_string(w));
    EXPECT_EQ(store.appended(id), static_cast<uint64_t>(kSteps));
    const auto records = AllRecords(store, id);
    ASSERT_EQ(records.size(), static_cast<size_t>(kSteps));
    for (int64_t t = 0; t < kSteps; ++t) {
      ASSERT_EQ(records[static_cast<size_t>(t)].timestamp, t);
      ASSERT_EQ(records[static_cast<size_t>(t)].anomaly, t % 7 == 0 ? 1 : 0);
    }
  }
}

// ---- query engine vs. brute force ---------------------------------------

/// Deterministic mixed fleet used by the query-pinning tests, mirrored
/// into plain vectors as the brute-force reference.
struct Fleet {
  HistoryStore store{HistoryConfig{256, 1.0}};
  std::map<std::string, std::vector<Record>> reference;

  Fleet() {
    for (int i = 0; i < 12; ++i) {
      const std::string name = "svc-" + std::to_string(i);
      const auto id = store.Intern(name);
      for (int64_t t = 0; t < 200; ++t) {
        // Tenant i spikes when (t / 10) % 12 == i — distinct per-tenant
        // anomaly phases with controlled overlap via the modulus.
        const bool spike = (t / 10) % 12 == i % 6;
        const double score =
            spike ? 2.0 + 0.125 * static_cast<double>(i)
                  : 0.25 + 0.03125 * static_cast<double>((t + i) % 8);
        store.Append(id, t, score);
        Record r;
        r.timestamp = t;
        r.score = static_cast<float>(score);
        r.anomaly = score > 1.0 ? 1 : 0;
        reference[name].push_back(r);
      }
    }
  }
};

TEST(HistoryQueryTest, TopTenantsMatchesBruteForce) {
  Fleet fleet;
  const int64_t t0 = 30, t1 = 170;

  struct Ref {
    std::string name;
    double severity;
    uint64_t records = 0, anomalies = 0;
  };
  std::vector<Ref> expected;
  for (const auto& [name, records] : fleet.reference) {
    Ref ref{name, 0.0};
    double excess = 0.0;
    const double threshold = 1.0;
    for (const Record& r : records) {
      if (r.timestamp < t0 || r.timestamp > t1) continue;
      ++ref.records;
      if (r.anomaly) {
        ++ref.anomalies;
        excess += static_cast<double>(r.score) - threshold;
      }
    }
    const double rate = static_cast<double>(ref.anomalies) /
                        static_cast<double>(ref.records);
    const double mean_excess =
        ref.anomalies > 0 ? excess / static_cast<double>(ref.anomalies) : 0.0;
    ref.severity = rate * mean_excess;
    expected.push_back(ref);
  }
  std::sort(expected.begin(), expected.end(), [](const Ref& a, const Ref& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.anomalies != b.anomalies) return a.anomalies > b.anomalies;
    return a.name < b.name;
  });

  const auto ranks = TopTenants(fleet.store, t0, t1, 5);
  ASSERT_EQ(ranks.size(), 5u);
  for (size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i].tenant, expected[i].name) << "rank " << i;
    EXPECT_NEAR(ranks[i].severity, expected[i].severity, 1e-12);
    EXPECT_EQ(ranks[i].records, expected[i].records);
    EXPECT_EQ(ranks[i].anomalies, expected[i].anomalies);
  }
  // Asking for more than the fleet returns every active tenant, sorted.
  EXPECT_EQ(TopTenants(fleet.store, t0, t1, 100).size(), 12u);
  // An empty range ranks nobody.
  EXPECT_TRUE(TopTenants(fleet.store, 1000, 2000, 5).empty());
}

TEST(HistoryQueryTest, AnomalyRateSeriesMatchesBruteForce) {
  Fleet fleet;
  const int64_t t0 = 0, t1 = 199, width = 25;
  const auto series = AnomalyRateSeries(fleet.store, "svc-3", t0, t1, width);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), 8u);

  for (size_t b = 0; b < series->size(); ++b) {
    const int64_t start = t0 + static_cast<int64_t>(b) * width;
    uint64_t records = 0, anomalies = 0;
    for (const Record& r : fleet.reference.at("svc-3")) {
      if (r.timestamp < start || r.timestamp >= start + width) continue;
      ++records;
      anomalies += r.anomaly;
    }
    EXPECT_EQ((*series)[b].start, start);
    EXPECT_EQ((*series)[b].records, records) << "bucket " << b;
    EXPECT_EQ((*series)[b].anomalies, anomalies) << "bucket " << b;
    const double rate = records == 0 ? 0.0
                                     : static_cast<double>(anomalies) /
                                           static_cast<double>(records);
    EXPECT_NEAR((*series)[b].rate, rate, 1e-12);
  }
}

TEST(HistoryQueryTest, AnomalyRateSeriesRejectsBadArguments) {
  Fleet fleet;
  auto unknown = AnomalyRateSeries(fleet.store, "nope", 0, 100, 10);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(AnomalyRateSeries(fleet.store, "svc-0", 0, 100, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      AnomalyRateSeries(fleet.store, "svc-0", 100, 0, 10).status().code(),
      StatusCode::kInvalidArgument);
  // Full-axis range at width 1 would need ~2^64 buckets — must error,
  // not allocate.
  EXPECT_EQ(AnomalyRateSeries(fleet.store, "svc-0", INT64_MIN, INT64_MAX, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HistoryQueryTest, AnomalyRateSeriesSurvivesFullAxisRange) {
  // The full time axis at a 2^62 width is accepted (4 buckets); the
  // bucket starts b * width above INT64_MIN exceed int64 intermediate
  // math and must be computed in unsigned space, not via signed overflow.
  Fleet fleet;
  const int64_t width = int64_t{1} << 62;
  const auto series =
      AnomalyRateSeries(fleet.store, "svc-0", INT64_MIN, INT64_MAX, width);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), 4u);
  for (size_t b = 0; b < series->size(); ++b) {
    EXPECT_EQ((*series)[b].start,
              static_cast<int64_t>(static_cast<uint64_t>(INT64_MIN) +
                                   b * static_cast<uint64_t>(width)));
  }
  // All of svc-0's records land in the bucket holding [0, 2^62).
  uint64_t total = 0;
  for (const auto& bucket : *series) total += bucket.records;
  EXPECT_EQ(total, fleet.reference.at("svc-0").size());
  EXPECT_EQ((*series)[2].records, fleet.reference.at("svc-0").size());
}

TEST(HistoryQueryTest, CorrelateMatchesBruteForceJaccard) {
  // Hand-built co-occurrence: a and b are anomalous in exactly the same
  // windows, c overlaps them in half its windows, d never fires.
  HistoryStore store(HistoryConfig{64, 1.0});
  const auto a = store.Intern("a");
  const auto b = store.Intern("b");
  const auto c = store.Intern("c");
  store.Intern("d");
  for (int64_t w = 0; w < 8; ++w) {
    const int64_t t = w * 10 + 3;  // one record per 10-wide window
    const bool ab = w < 4;         // a, b anomalous in windows 0..3
    const bool cc = w >= 2 && w < 6;  // c anomalous in windows 2..5
    store.Append(a, t, ab ? 2.0 : 0.1);
    store.Append(b, t, ab ? 3.0 : 0.2);
    store.Append(c, t, cc ? 2.5 : 0.3);
  }

  CorrelationOptions options;
  options.window_width = 10;
  options.min_jaccard = 0.5;
  const auto report = CorrelateAnomalies(store, 0, 79, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Jaccards: a-b = 4/4 = 1.0; a-c = b-c = |{2,3}| / |{0..5}| = 2/6.
  // min_jaccard 0.5 keeps only a-b; d (no anomalies) never participates.
  EXPECT_EQ(report->tenants_considered, 3u);
  EXPECT_FALSE(report->truncated);
  ASSERT_EQ(report->pairs.size(), 1u);
  EXPECT_EQ(report->pairs[0].a, "a");
  EXPECT_EQ(report->pairs[0].b, "b");
  EXPECT_NEAR(report->pairs[0].jaccard, 1.0, 1e-12);
  EXPECT_EQ(report->pairs[0].co_windows, 4u);
  ASSERT_EQ(report->clusters.size(), 1u);
  EXPECT_EQ(report->clusters[0].tenants,
            (std::vector<std::string>{"a", "b"}));

  // Loosening the cut admits the a-c and b-c edges, merging one cluster.
  options.min_jaccard = 0.25;
  const auto loose = CorrelateAnomalies(store, 0, 79, options);
  ASSERT_TRUE(loose.ok());
  ASSERT_EQ(loose->pairs.size(), 3u);
  EXPECT_NEAR(loose->pairs[1].jaccard, 2.0 / 6.0, 1e-12);
  ASSERT_EQ(loose->clusters.size(), 1u);
  EXPECT_EQ(loose->clusters[0].tenants,
            (std::vector<std::string>{"a", "b", "c"}));

  // max_tenants cap: only the most anomalous tenants participate.
  options.max_tenants = 2;
  const auto capped = CorrelateAnomalies(store, 0, 79, options);
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped->truncated);
  EXPECT_EQ(capped->tenants_considered, 3u);
  ASSERT_EQ(capped->pairs.size(), 1u);  // a-b survive (4 windows each)
  EXPECT_EQ(capped->pairs[0].a, "a");
  EXPECT_EQ(capped->pairs[0].b, "b");
}

TEST(HistoryQueryTest, CorrelateRejectsBadOptions) {
  HistoryStore store(HistoryConfig{});
  CorrelationOptions options;
  options.window_width = 0;
  EXPECT_EQ(CorrelateAnomalies(store, 0, 10, options).status().code(),
            StatusCode::kInvalidArgument);
  options = CorrelationOptions();
  options.max_tenants = 0;
  EXPECT_EQ(CorrelateAnomalies(store, 0, 10, options).status().code(),
            StatusCode::kInvalidArgument);
  options = CorrelationOptions();
  options.min_jaccard = 1.5;
  EXPECT_EQ(CorrelateAnomalies(store, 0, 10, options).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- snapshot ------------------------------------------------------------

TEST(HistorySnapshotTest, RoundTripsBitIdentically) {
  Fleet fleet;
  const std::string path1 = ScratchPath("rt1.snap");
  const std::string path2 = ScratchPath("rt2.snap");
  ASSERT_TRUE(WriteSnapshot(fleet.store, path1, 1.0).ok());

  auto reader = SnapshotReader::Open(path1);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->NumTenants(), fleet.store.NumTenants());
  EXPECT_EQ(reader->total_records(), 12u * 200u);
  EXPECT_EQ(reader->default_threshold(), 1.0);

  // Per-tenant contents are byte-equal to the live rings.
  for (size_t i = 0; i < reader->NumTenants(); ++i) {
    EXPECT_EQ(reader->TenantName(i), fleet.store.TenantName(i));
    EXPECT_EQ(reader->TenantThreshold(i), fleet.store.TenantThreshold(i));
    const auto live = AllRecords(fleet.store, i);
    const RecordSpan snap = reader->Records(i);
    ASSERT_EQ(snap.size, live.size());
    EXPECT_EQ(std::memcmp(snap.data, live.data(), live.size() * sizeof(Record)),
              0);
  }

  // A reader is itself a HistorySource: re-snapshotting it reproduces the
  // file byte for byte (same tenants, thresholds, records, CRC).
  ASSERT_TRUE(WriteSnapshot(*reader, path2, 1.0).ok());
  EXPECT_EQ(ReadFile(path1), ReadFile(path2));

  // Queries over the snapshot equal queries over the live store.
  const auto live_top = TopTenants(fleet.store, 0, 199, 5);
  const auto snap_top = TopTenants(*reader, 0, 199, 5);
  ASSERT_EQ(snap_top.size(), live_top.size());
  for (size_t i = 0; i < live_top.size(); ++i) {
    EXPECT_EQ(snap_top[i].tenant, live_top[i].tenant);
    EXPECT_EQ(snap_top[i].severity, live_top[i].severity);
  }

  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(HistorySnapshotTest, OpenReportsMissingFile) {
  auto reader = SnapshotReader::Open(ScratchPath("does_not_exist.snap"));
  ASSERT_FALSE(reader.ok());
}

/// Builds a small valid snapshot image in memory for corruption tests.
std::vector<uint8_t> ValidImage() {
  HistoryStore store(HistoryConfig{8, 1.0});
  const auto a = store.Intern("svc-a");
  const auto b = store.Intern("svc-b");
  for (int64_t t = 0; t < 6; ++t) {
    store.Append(a, t, t >= 4 ? 2.0 : 0.5);
    store.Append(b, t, 0.25);
  }
  const std::string path = ScratchPath("corrupt_base.snap");
  MACE_CHECK_OK(WriteSnapshot(store, path, 1.0));
  const std::string bytes = ReadFile(path);
  std::filesystem::remove(path);
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

/// Re-fixes the CRC (offset 20, covering [24, end)) after a mutation so
/// the image reaches the validation branch under test.
void FixCrc(std::vector<uint8_t>* image) {
  const uint32_t crc = Crc32(image->data() + 24, image->size() - 24);
  std::memcpy(image->data() + 20, &crc, 4);
}

void ExpectRejected(std::vector<uint8_t> image, const std::string& fragment) {
  auto reader = SnapshotReader::FromBuffer(std::move(image));
  ASSERT_FALSE(reader.ok()) << "expected rejection mentioning '" << fragment
                            << "'";
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find(fragment), std::string::npos)
      << "got: " << reader.status().message();
}

TEST(HistorySnapshotTest, RejectsCorruptImagesWithDescriptiveErrors) {
  const std::vector<uint8_t> valid = ValidImage();
  ASSERT_TRUE(SnapshotReader::FromBuffer(valid).ok());

  ExpectRejected({}, "truncated header");
  ExpectRejected(std::vector<uint8_t>(valid.begin(), valid.begin() + 40),
                 "truncated header");

  auto image = valid;
  image[7] = '9';
  ExpectRejected(image, "magic");

  image = valid;
  image[8] = 2;  // version
  FixCrc(&image);
  ExpectRejected(image, "unsupported version");

  image = valid;
  image[12] = 24;  // record size
  FixCrc(&image);
  ExpectRejected(image, "record size");

  image = valid;
  std::memset(image.data() + 16, 0xff, 4);  // tenant count
  FixCrc(&image);
  ExpectRejected(image, "implausible tenant count");

  image = valid;
  image.back() ^= 1;  // flip a record byte, CRC left stale
  ExpectRejected(image, "checksum mismatch");

  image = valid;
  image[32] = 65;  // records offset: unaligned
  FixCrc(&image);
  ExpectRejected(image, "records offset");

  image = valid;
  image[24] ^= 1;  // total record count no longer matches the section size
  FixCrc(&image);
  ExpectRejected(image, "record");

  // total_records picked so count * sizeof(Record) wraps to 0 mod 2^64
  // while records_offset points at the file's end; the section-size check
  // must reject by division instead of comparing the wrapped product.
  image = valid;
  const uint64_t wrap_count = uint64_t{1} << 60;
  std::memcpy(image.data() + 24, &wrap_count, 8);
  const uint64_t end_offset = image.size();
  std::memcpy(image.data() + 32, &end_offset, 8);
  FixCrc(&image);
  ExpectRejected(image, "record section size mismatch");

  image = valid;
  std::memset(image.data() + 64, 0xff, 3);  // tenant 0 name length
  FixCrc(&image);
  ExpectRejected(image, "name length");

  // Swap the first two timestamps of tenant 0: per-tenant order violated.
  image = valid;
  uint64_t records_offset = 0;
  std::memcpy(&records_offset, image.data() + 32, 8);
  std::vector<uint8_t> first(image.begin() + records_offset,
                             image.begin() + records_offset + 8);
  std::memcpy(image.data() + records_offset,
              image.data() + records_offset + 16, 8);
  std::memcpy(image.data() + records_offset + 16, first.data(), 8);
  FixCrc(&image);
  ExpectRejected(image, "not time-ordered");
}

// ---- scoring-surface integration ----------------------------------------

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 96, 320, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

std::shared_ptr<const core::MaceDetector> FittedModel() {
  core::MaceConfig config;
  config.epochs = 1;
  config.seed = 42;
  auto detector = std::make_shared<core::MaceDetector>(config);
  MACE_CHECK_OK(detector->Fit(TinyWorkload()));
  return detector;
}

TEST(HistoryIntegrationTest, StreamingScorerMirrorsEmittedScores) {
  const auto model = FittedModel();
  const auto services = TinyWorkload();
  HistoryStore store(HistoryConfig{1024, 0.0});  // threshold 0: bits vary

  auto scorer = core::StreamingScorer::Create(model.get(), 0);
  ASSERT_TRUE(scorer.ok());
  scorer->AttachHistory(&store, store.Intern("svc0"));
  EXPECT_TRUE(scorer->history_attached());

  std::vector<double> emitted;
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    auto out = scorer->Push(services[0].test.values()[t]);
    ASSERT_TRUE(out.ok());
    emitted.insert(emitted.end(), out->begin(), out->end());
  }
  const auto tail = scorer->Finish();
  emitted.insert(emitted.end(), tail.begin(), tail.end());
  ASSERT_FALSE(emitted.empty());

  // Every emitted score landed in the store, timestamped by step index.
  const auto records = AllRecords(store, 0);
  ASSERT_EQ(records.size(), emitted.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp, static_cast<int64_t>(i));
    EXPECT_EQ(records[i].score, static_cast<float>(emitted[i]));
    EXPECT_EQ(records[i].anomaly, emitted[i] > 0.0 ? 1 : 0);
  }

  // Reset detaches: a recycled session never writes into the previous
  // tenant's history.
  scorer->Reset();
  EXPECT_FALSE(scorer->history_attached());
  ASSERT_TRUE(scorer->Push(services[0].test.values()[0]).ok());
  EXPECT_EQ(store.appended(0), emitted.size());
}

TEST(HistoryIntegrationTest, ServeFrontendRecordsPerTenantHistory) {
  const auto model = FittedModel();
  const auto services = TinyWorkload();
  HistoryStore store(HistoryConfig{1024, 0.0});

  serve::ServeConfig config;
  config.num_shards = 2;
  config.history = &store;
  auto frontend = serve::ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();

  constexpr int kTenants = 3;
  std::vector<size_t> scores(kTenants, 0);
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    for (int k = 0; k < kTenants; ++k) {
      const int service = k % 2;
      auto out = (*frontend)->Score("tenant-" + std::to_string(k), service,
                                    services[service].test.values()[t]);
      ASSERT_TRUE(out.ok());
      scores[static_cast<size_t>(k)] += out->scores.size();
    }
  }
  for (int k = 0; k < kTenants; ++k) {
    auto tail = (*frontend)->Close("tenant-" + std::to_string(k), k % 2);
    ASSERT_TRUE(tail.ok());
    scores[static_cast<size_t>(k)] += tail->size();
  }

  // Tenant key is "<tenant>/<service>"; every emitted score is recorded.
  ASSERT_EQ(store.NumTenants(), static_cast<size_t>(kTenants));
  for (int k = 0; k < kTenants; ++k) {
    const std::string key =
        "tenant-" + std::to_string(k) + "/" + std::to_string(k % 2);
    const auto id = store.Intern(key);
    EXPECT_EQ(store.appended(id), scores[static_cast<size_t>(k)]) << key;
  }
}

TEST(HistoryIntegrationTest, RecreatedSessionsKeepTenantTimestampsMonotonic) {
  const auto model = FittedModel();
  const auto services = TinyWorkload();
  HistoryStore store(HistoryConfig{1024, 0.0});

  serve::ServeConfig config;
  config.history = &store;
  auto frontend = serve::ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();

  // Two generations of the same session key: Close recycles the session,
  // so the second round of Scores re-creates it and its emitted step
  // index restarts at 0. The history tenant must keep non-decreasing
  // timestamps anyway (the registry seeds the base from next_timestamp).
  for (int generation = 0; generation < 2; ++generation) {
    for (size_t t = 0; t < services[0].test.length(); ++t) {
      ASSERT_TRUE(
          (*frontend)->Score("tenant", 0, services[0].test.values()[t]).ok());
    }
    ASSERT_TRUE((*frontend)->Close("tenant", 0).ok());
  }

  ASSERT_EQ(store.NumTenants(), 1u);
  const auto records = AllRecords(store, 0);
  ASSERT_FALSE(records.empty());
  for (size_t i = 1; i < records.size(); ++i) {
    ASSERT_GE(records[i].timestamp, records[i - 1].timestamp) << "at " << i;
  }
  EXPECT_EQ(store.next_timestamp(store.Intern("tenant/0")),
            records.back().timestamp + 1);

  // A snapshot spanning both generations must stay writable and readable.
  const std::string path = ScratchPath("recreated_sessions.snap");
  ASSERT_TRUE(WriteSnapshot(store, path, 0.0).ok());
  const auto reader = SnapshotReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mace::history
