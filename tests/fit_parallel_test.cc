// Data-parallel minibatch training (DESIGN.md "Parallel training") is
// deterministic by construction: minibatches split into fixed-size
// gradient shards — a pure function of the minibatch, never of
// fit_threads — and shard gradients merge through a fixed-pairing tree
// reduction. These tests pin the resulting contracts: any fit_threads
// value reproduces fit_threads=1 epoch losses and weights bit for bit,
// repeated runs under one seed are bit-identical, and batch_size=1
// degenerates to exactly the historical per-window SGD loop.

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/mace_detector.h"
#include "core/mace_model.h"
#include "core/pattern_extractor.h"
#include "nn/optimizer.h"
#include "ts/generator.h"
#include "ts/scaler.h"
#include "ts/time_series.h"

namespace mace::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 400, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPoolTest, CoversEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](size_t task, int /*worker*/) {
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPoolTest, ZeroTasksRunsNothing) {
  WorkerPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(WorkerPoolTest, SingleTaskRunsInlineOnCallingThread) {
  WorkerPool pool(8);
  int worker_seen = -1;
  pool.ParallelFor(1, [&](size_t task, int worker) {
    EXPECT_EQ(task, 0u);
    worker_seen = worker;
  });
  // The inline fast path executes on the caller, which is worker 0.
  EXPECT_EQ(worker_seen, 0);
}

TEST(WorkerPoolTest, ReusableAcrossRounds) {
  WorkerPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(17);
    pool.ParallelFor(hits.size(), [&](size_t task, int /*worker*/) {
      hits[task].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " task " << i;
    }
  }
}

TEST(WorkerPoolTest, MoreThreadsThanTasksIsSafe) {
  WorkerPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t task, int /*worker*/) {
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPoolTest, ClampsThreadCountToAtLeastOne) {
  EXPECT_EQ(WorkerPool(0).threads(), 1);
  EXPECT_EQ(WorkerPool(-3).threads(), 1);
}

TEST(WorkerPoolTest, WorkerIdsStayInRange) {
  WorkerPool pool(4);
  std::atomic<bool> in_range{true};
  pool.ParallelFor(64, [&](size_t /*task*/, int worker) {
    if (worker < 0 || worker >= 4) in_range.store(false);
  });
  EXPECT_TRUE(in_range.load());
}

// ---------------------------------------------------------------------------
// Config validation

TEST(FitParallelConfigTest, RejectsNonPositiveFitThreads) {
  MaceConfig config;
  config.fit_threads = 0;
  const Status status = MaceDetector::ValidateConfig(config);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fit_threads must be >= 1"),
            std::string::npos)
      << status.message();
}

TEST(FitParallelConfigTest, RejectsNonPositiveBatchSize) {
  MaceConfig config;
  config.batch_size = -3;
  const Status status = MaceDetector::ValidateConfig(config);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("batch_size must be >= 1"),
            std::string::npos)
      << status.message();
}

TEST(FitParallelConfigTest, AcceptsParallelTrainingSettings) {
  MaceConfig config;
  config.fit_threads = 8;
  config.batch_size = 64;
  EXPECT_TRUE(MaceDetector::ValidateConfig(config).ok());
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the acceptance criterion of the parallel
// trainer. batch_size=20 spans three kFitShardWindows=8 shards, so the
// tree reduction actually has work to do, and the two-service workload
// produces shards mixing services.

class FitThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(FitThreadsTest, ReproducesSequentialLossesAndScoresExactly) {
  const auto services = TinyWorkload();
  MaceConfig sequential_config;
  sequential_config.epochs = 2;
  sequential_config.batch_size = 20;
  sequential_config.fit_threads = 1;
  MaceConfig parallel_config = sequential_config;
  parallel_config.fit_threads = GetParam();

  MaceDetector sequential(sequential_config);
  MaceDetector parallel(parallel_config);
  ASSERT_TRUE(sequential.Fit(services).ok());
  ASSERT_TRUE(parallel.Fit(services).ok());

  // Preprocessing fans out per service; the extracted subspaces must not
  // depend on scheduling.
  ASSERT_EQ(sequential.subspaces().size(), parallel.subspaces().size());
  for (size_t s = 0; s < sequential.subspaces().size(); ++s) {
    EXPECT_EQ(sequential.subspaces()[s].bases, parallel.subspaces()[s].bases);
  }

  // Epoch losses bit-identical (EXPECT_EQ on double is exact equality).
  ASSERT_EQ(sequential.epoch_losses().size(), parallel.epoch_losses().size());
  for (size_t e = 0; e < sequential.epoch_losses().size(); ++e) {
    EXPECT_EQ(sequential.epoch_losses()[e], parallel.epoch_losses()[e])
        << "epoch " << e;
  }

  // Weights bit-identical: identical scores on every test step.
  for (int s = 0; s < 2; ++s) {
    auto a = sequential.Score(s, services[static_cast<size_t>(s)].test);
    auto b = parallel.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_EQ((*a)[t], (*b)[t]) << "service " << s << " step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, FitThreadsTest,
                         ::testing::Values(2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Cross-run determinism: one seed, two Fits — identical shuffle order
// (pinned through the losses, which depend on every update in sequence)
// and identical serialized weights.

TEST(FitParallelTest, RepeatedRunsAreBitIdentical) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.fit_threads = 4;

  MaceDetector first(config);
  MaceDetector second(config);
  ASSERT_TRUE(first.Fit(services).ok());
  ASSERT_TRUE(second.Fit(services).ok());

  ASSERT_EQ(first.epoch_losses().size(), second.epoch_losses().size());
  for (size_t e = 0; e < first.epoch_losses().size(); ++e) {
    EXPECT_EQ(first.epoch_losses()[e], second.epoch_losses()[e])
        << "epoch " << e;
  }

  const std::string path_a = ::testing::TempDir() + "fit_parallel_a.mace";
  const std::string path_b = ::testing::TempDir() + "fit_parallel_b.mace";
  ASSERT_TRUE(first.Save(path_a).ok());
  ASSERT_TRUE(second.Save(path_b).ok());
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST(FitParallelTest, BatchLargerThanWindowCountIsSafe) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  config.batch_size = 100000;  // clamped to the window count internally
  config.fit_threads = 4;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(services).ok());
  ASSERT_EQ(detector.epoch_losses().size(), 1u);
  auto scores = detector.Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), services[0].test.length());
}

// ---------------------------------------------------------------------------
// Reference pin: batch_size=1 must reproduce the historical per-window
// SGD loop bit for bit — same preprocessing, same Rng consumption, one
// Forward/Backward/Clip/Step per window in shuffle order. The loop below
// is that legacy trainer rebuilt from public APIs; if a refactor of Fit
// perturbs even one double of the batch_size=1 path, the losses diverge.

std::vector<double> ReferencePerWindowSgdLosses(
    const MaceConfig& config, const std::vector<ts::ServiceData>& services) {
  const int num_features = services.front().train.num_features();
  std::vector<ServiceTransforms> transforms;
  std::vector<std::vector<Tensor>> amplified;
  int coeff_columns = 0;
  for (const ts::ServiceData& service : services) {
    ts::StandardScaler scaler;
    scaler.Fit(service.train);
    const ts::TimeSeries scaled = scaler.Transform(service.train);
    // Bases are selected on the stage-1-amplified signal.
    std::vector<std::vector<double>> amp_values(
        scaled.length(), std::vector<double>(num_features));
    for (int f = 0; f < num_features; ++f) {
      const std::vector<double> amp =
          DualisticAmplify(scaled.Feature(f), config.time_kernel,
                           config.gamma_t, config.sigma_t);
      for (size_t t = 0; t < scaled.length(); ++t) {
        amp_values[t][static_cast<size_t>(f)] = amp[t];
      }
    }
    PatternExtractorOptions options;
    options.window = config.window;
    options.stride = config.train_stride;
    options.num_bases = config.num_bases;
    options.strongest_per_window = config.strongest_per_window;
    auto subspace = ExtractPattern(
        ts::TimeSeries(std::move(amp_values), scaled.labels()), options);
    EXPECT_TRUE(subspace.ok());
    std::sort(subspace->bases.begin(), subspace->bases.end());
    coeff_columns = 2 * static_cast<int>(subspace->bases.size());
    transforms.push_back(MakeServiceTransforms(config.window, subspace->bases));

    auto batch = ts::MakeWindows(scaled, config.window, config.train_stride);
    EXPECT_TRUE(batch.ok());
    std::vector<Tensor> windows;
    for (const Tensor& w : batch->windows) {
      const auto m = static_cast<size_t>(w.dim(0));
      const auto t_len = static_cast<size_t>(w.dim(1));
      std::vector<double> out(m * t_len);
      for (size_t f = 0; f < m; ++f) {
        const std::vector<double> row(w.data().begin() + f * t_len,
                                      w.data().begin() + (f + 1) * t_len);
        const std::vector<double> amp = DualisticAmplify(
            row, config.time_kernel, config.gamma_t, config.sigma_t);
        std::copy(amp.begin(), amp.end(), out.begin() + f * t_len);
      }
      windows.push_back(
          Tensor::FromVector(std::move(out), Shape{w.dim(0), w.dim(1)}));
    }
    amplified.push_back(std::move(windows));
  }

  Rng rng(config.seed);
  MaceModel model(config, num_features, coeff_columns, &rng);
  nn::Adam optimizer(model.Parameters(), config.learning_rate);
  std::vector<std::pair<size_t, size_t>> order;
  for (size_t s = 0; s < amplified.size(); ++s) {
    for (size_t w = 0; w < amplified[s].size(); ++w) order.emplace_back(s, w);
  }
  std::vector<double> losses;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (const auto& [s, w] : order) {
      optimizer.ZeroGrad();
      MaceModel::Output out =
          model.Forward(transforms[s], amplified[s][w],
                        /*want_step_errors=*/false);
      epoch_loss += out.loss.item();
      out.loss.Backward();
      optimizer.ClipGradNorm(config.grad_clip);
      optimizer.Step();
    }
    losses.push_back(epoch_loss / static_cast<double>(order.size()));
  }
  return losses;
}

TEST(FitParallelTest, BatchSizeOneReproducesPerWindowSgdBitwise) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 2;
  config.batch_size = 1;

  const std::vector<double> reference =
      ReferencePerWindowSgdLosses(config, services);

  for (int threads : {1, 4}) {
    MaceConfig run = config;
    run.fit_threads = threads;
    MaceDetector detector(run);
    ASSERT_TRUE(detector.Fit(services).ok());
    ASSERT_EQ(detector.epoch_losses().size(), reference.size());
    for (size_t e = 0; e < reference.size(); ++e) {
      EXPECT_EQ(detector.epoch_losses()[e], reference[e])
          << "fit_threads " << threads << " epoch " << e;
    }
  }
}

}  // namespace
}  // namespace mace::core
