#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iterator>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "obs/metrics.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(3 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 200, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

MaceDetector Fitted() {
  MaceConfig config;
  config.epochs = 2;
  MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(TinyWorkload()));
  return detector;
}

TEST(StreamingScorerTest, CreateValidatesInputs) {
  EXPECT_FALSE(StreamingScorer::Create(nullptr, 0).ok());
  MaceConfig config;
  MaceDetector unfitted(config);
  EXPECT_FALSE(StreamingScorer::Create(&unfitted, 0).ok());
  MaceDetector detector = Fitted();
  EXPECT_FALSE(StreamingScorer::Create(&detector, 5).ok());
  EXPECT_TRUE(StreamingScorer::Create(&detector, 0).ok());
}

TEST(StreamingScorerTest, EmitsWithWindowLatency) {
  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  const auto services = TinyWorkload();
  const ts::TimeSeries& test = services[0].test;
  const int window = detector.config().window;

  size_t emitted = 0;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = scorer->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    if (t + 1 < static_cast<size_t>(window)) {
      EXPECT_TRUE(out->empty()) << "premature emission at step " << t;
    }
    emitted += out->size();
    // Latency property: emitted steps always trail input by >= window - 1.
    EXPECT_LE(emitted + window - 1, t + 1 + window);
  }
  const auto tail = scorer->Finish();
  emitted += tail.size();
  EXPECT_EQ(emitted, test.length());
}

TEST(StreamingScorerTest, MatchesBatchScoringExactly) {
  MaceDetector detector = Fitted();
  const auto services = TinyWorkload();
  for (int s = 0; s < 2; ++s) {
    const ts::TimeSeries& test = services[static_cast<size_t>(s)].test;
    auto batch = detector.Score(s, test);
    ASSERT_TRUE(batch.ok());

    auto scorer = StreamingScorer::Create(&detector, s);
    ASSERT_TRUE(scorer.ok());
    std::vector<double> streamed;
    for (size_t t = 0; t < test.length(); ++t) {
      auto out = scorer->Push(test.values()[t]);
      ASSERT_TRUE(out.ok());
      streamed.insert(streamed.end(), out->begin(), out->end());
    }
    const auto tail = scorer->Finish();
    streamed.insert(streamed.end(), tail.begin(), tail.end());

    ASSERT_EQ(streamed.size(), batch->size());
    for (size_t t = 0; t < streamed.size(); ++t) {
      EXPECT_NEAR(streamed[t], (*batch)[t], 1e-9) << "step " << t;
    }
  }
}

TEST(StreamingScorerTest, ShortStreamYieldsNothing) {
  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  for (int t = 0; t < detector.config().window - 1; ++t) {
    auto out = scorer->Push({0.0, 0.0});
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->empty());
  }
  EXPECT_TRUE(scorer->Finish().empty());
}

TEST(StreamingScorerTest, RejectsWrongFeatureCount) {
  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  EXPECT_FALSE(scorer->Push({1.0}).ok());
  EXPECT_FALSE(scorer->Push({1.0, 2.0, 3.0}).ok());
}

TEST(StreamingScorerTest, MetricsMatchStepsConsumed) {
  // The obs instruments are process-global and other tests stream through
  // service 0 too, so assert on deltas across this scorer's lifetime.
  obs::MetricsRegistry& metrics = obs::Metrics();
  obs::Counter* steps = metrics.GetCounter(
      "mace_stream_steps_total", "", {{"service", "0"}});
  obs::Counter* emitted = metrics.GetCounter(
      "mace_stream_scores_emitted_total", "", {{"service", "0"}});
  obs::Histogram* latency = metrics.GetHistogram(
      "mace_stream_emit_latency_steps", "", {{"service", "0"}},
      obs::StepBuckets());
  const uint64_t steps_before = steps->Value();
  const uint64_t emitted_before = emitted->Value();
  const uint64_t latency_before = latency->Count();

  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  const auto services = TinyWorkload();
  const ts::TimeSeries& test = services[0].test;
  size_t streamed = 0;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = scorer->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    streamed += out->size();
  }
  streamed += scorer->Finish().size();

  EXPECT_EQ(steps->Value() - steps_before, scorer->steps_consumed());
  EXPECT_EQ(scorer->steps_consumed(), test.length());
  EXPECT_EQ(scorer->scores_emitted(), streamed);
  EXPECT_EQ(emitted->Value() - emitted_before, streamed);
  // One latency observation per emitted score.
  EXPECT_EQ(latency->Count() - latency_before, streamed);
  const double throughput =
      metrics.GetGauge("mace_stream_scores_per_second", "",
                       {{"service", "0"}})
          ->Value();
  EXPECT_GT(throughput, 0.0);
}

TEST(StreamingScorerTest, ResetReplayMatchesFreshScorer) {
  MaceDetector detector = Fitted();
  const auto services = TinyWorkload();
  const ts::TimeSeries& test = services[0].test;

  auto fresh = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(fresh.ok());
  std::vector<double> expected;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = fresh->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    expected.insert(expected.end(), out->begin(), out->end());
  }
  const auto fresh_tail = fresh->Finish();
  expected.insert(expected.end(), fresh_tail.begin(), fresh_tail.end());

  // Pollute a scorer mid-stream (pending window state, partial buffer),
  // Reset it, and replay: it must behave exactly like a fresh scorer.
  auto recycled = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(recycled.ok());
  for (size_t t = 0; t < 57; ++t) {
    ASSERT_TRUE(recycled->Push(test.values()[t]).ok());
  }
  recycled->Reset();
  EXPECT_EQ(recycled->steps_consumed(), 0u);
  EXPECT_EQ(recycled->next_emitted_step(), 0u);
  EXPECT_EQ(recycled->scores_emitted(), 0u);

  std::vector<double> replayed;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = recycled->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    replayed.insert(replayed.end(), out->begin(), out->end());
  }
  const auto tail = recycled->Finish();
  replayed.insert(replayed.end(), tail.begin(), tail.end());

  ASSERT_EQ(replayed.size(), expected.size());
  for (size_t t = 0; t < replayed.size(); ++t) {
    EXPECT_EQ(replayed[t], expected[t]) << "step " << t;
  }
}

TEST(StreamingScorerTest, ResetZeroesThroughputGauge) {
  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  const auto services = TinyWorkload();
  const ts::TimeSeries& test = services[0].test;
  for (size_t t = 0; t < test.length(); ++t) {
    ASSERT_TRUE(scorer->Push(test.values()[t]).ok());
  }
  obs::Gauge* throughput = obs::Metrics().GetGauge(
      "mace_stream_scores_per_second", "", {{"service", "0"}});
  ASSERT_GT(throughput->Value(), 0.0);

  // A recycled session must not report the previous tenant's throughput.
  scorer->Reset();
  EXPECT_EQ(throughput->Value(), 0.0);
}

TEST(StreamingScorerTest, PushManyMatchesSequentialPushes) {
  MaceDetector detector = Fitted();
  const auto services = TinyWorkload();
  const ts::TimeSeries& test = services[0].test;

  auto sequential = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(sequential.ok());
  std::vector<std::vector<double>> expected;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = sequential->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    expected.push_back(std::move(*out));
  }

  auto batched = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(batched.ok());
  // Chunk sizes chosen to land mid-window (partial buffer fills), exactly
  // on stride boundaries, and across several strides at once.
  const size_t chunks[] = {1, 3, 17, 64, 2, 128};
  size_t t = 0, chunk_index = 0;
  std::vector<std::vector<double>> actual;
  while (t < test.length()) {
    const size_t n =
        std::min(chunks[chunk_index++ % std::size(chunks)],
                 test.length() - t);
    std::vector<std::vector<double>> observations(
        test.values().begin() + static_cast<ptrdiff_t>(t),
        test.values().begin() + static_cast<ptrdiff_t>(t + n));
    auto out = batched->PushMany(observations);
    ASSERT_TRUE(out.ok()) << out.status().message();
    ASSERT_EQ(out->size(), n);
    for (auto& per_obs : *out) actual.push_back(std::move(per_obs));
    t += n;
  }

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].size(), expected[i].size()) << "push " << i;
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(actual[i][j], expected[i][j])
          << "push " << i << " score " << j;
    }
  }
  EXPECT_EQ(batched->steps_consumed(), sequential->steps_consumed());
  EXPECT_EQ(batched->scores_emitted(), sequential->scores_emitted());

  // The tails agree too.
  const auto tail_a = sequential->Finish();
  const auto tail_b = batched->Finish();
  ASSERT_EQ(tail_a.size(), tail_b.size());
  for (size_t i = 0; i < tail_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(tail_b[i], tail_a[i]) << "tail " << i;
  }
}

TEST(StreamingScorerTest, PushManyRejectsBadInputWithoutConsuming) {
  MaceDetector detector = Fitted();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  const auto services = TinyWorkload();
  // Second observation has the wrong feature count: nothing may be
  // consumed, not even the valid first observation.
  std::vector<std::vector<double>> observations = {
      services[0].test.values()[0], {1.0, 2.0, 3.0}};
  EXPECT_FALSE(scorer->PushMany(observations).ok());
  EXPECT_EQ(scorer->steps_consumed(), 0u);

  auto empty = scorer->PushMany({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(StreamingScorerTest, AnomaliesScoreHighInStream) {
  MaceDetector detector = Fitted();
  const auto services = TinyWorkload();
  auto scorer = StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  std::vector<double> streamed;
  const ts::TimeSeries& test = services[0].test;
  for (size_t t = 0; t < test.length(); ++t) {
    auto out = scorer->Push(test.values()[t]);
    ASSERT_TRUE(out.ok());
    streamed.insert(streamed.end(), out->begin(), out->end());
  }
  const auto tail = scorer->Finish();
  streamed.insert(streamed.end(), tail.begin(), tail.end());
  double normal = 0.0, anomalous = 0.0;
  int nc = 0, ac = 0;
  for (size_t t = 0; t < streamed.size(); ++t) {
    if (test.is_anomaly(t)) {
      anomalous += streamed[t];
      ++ac;
    } else {
      normal += streamed[t];
      ++nc;
    }
  }
  ASSERT_GT(ac, 0);
  EXPECT_GT(anomalous / ac, normal / nc);
}

}  // namespace
}  // namespace mace::core
