// Parallel scoring (the paper's S2: frequency-domain windows carry no
// temporal dependency, so inference parallelizes per window) must be
// bit-identical to sequential scoring.

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 400, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

class ParallelScoringTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelScoringTest, MatchesSequentialExactly) {
  const auto services = TinyWorkload();
  MaceConfig sequential_config;
  sequential_config.epochs = 2;
  sequential_config.score_threads = 1;
  MaceConfig parallel_config = sequential_config;
  parallel_config.score_threads = GetParam();

  MaceDetector sequential(sequential_config);
  MaceDetector parallel(parallel_config);
  ASSERT_TRUE(sequential.Fit(services).ok());
  ASSERT_TRUE(parallel.Fit(services).ok());

  for (int s = 0; s < 2; ++s) {
    auto a = sequential.Score(s, services[static_cast<size_t>(s)].test);
    auto b = parallel.Score(s, services[static_cast<size_t>(s)].test);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      EXPECT_DOUBLE_EQ((*a)[t], (*b)[t]) << "step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelScoringTest,
                         ::testing::Values(2, 4, 7, 64),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelScoringTest, MoreThreadsThanWindowsIsSafe) {
  const auto services = TinyWorkload();
  MaceConfig config;
  config.epochs = 1;
  config.score_threads = 1000;  // clamped to the window count internally
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(services).ok());
  auto scores = detector.Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), services[0].test.length());
}

}  // namespace
}  // namespace mace::core
