#include "core/mace_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/optimizer.h"

namespace mace::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

MaceConfig SmallConfig() {
  MaceConfig config;
  config.window = 16;
  config.num_bases = 6;
  config.freq_kernel = 3;
  config.hidden_channels = 4;
  return config;
}

ServiceTransforms SmallTransforms() {
  return MakeServiceTransforms(16, {1, 2, 3, 4, 5, 6});
}

TEST(ServiceTransformsTest, ShapesMatchBases) {
  const ServiceTransforms t = SmallTransforms();
  EXPECT_EQ(t.forward_t.shape(), (Shape{16, 12}));
  EXPECT_EQ(t.inverse_t.shape(), (Shape{12, 16}));
  EXPECT_EQ(t.marker_sin.size(), 6u);
  EXPECT_EQ(t.marker_cos.size(), 6u);
}

TEST(ServiceTransformsTest, MarkersEncodeFrequencies) {
  const ServiceTransforms t = MakeServiceTransforms(16, {4});
  // Base 4 of window 16: omega = pi/2.
  EXPECT_NEAR(t.marker_sin[0], 1.0, 1e-12);
  EXPECT_NEAR(t.marker_cos[0], 0.0, 1e-12);
}

TEST(MaceModelTest, ForwardProducesScalarLossAndStepErrors) {
  Rng rng(1);
  MaceModel model(SmallConfig(), /*num_features=*/3,
                  /*num_coeff_columns=*/12, &rng);
  const ServiceTransforms transforms = SmallTransforms();
  Tensor window = Tensor::RandomGaussian({3, 16}, &rng, 0.0, 1.0);
  auto out = model.Forward(transforms, window, /*want_step_errors=*/true);
  EXPECT_EQ(out.loss.numel(), 1);
  EXPECT_GE(out.loss.item(), 0.0);
  EXPECT_EQ(out.step_errors.size(), 16u);
  for (double e : out.step_errors) EXPECT_GE(e, 0.0);
}

TEST(MaceModelTest, StepErrorsSkippedWhenNotRequested) {
  Rng rng(2);
  MaceModel model(SmallConfig(), 2, 12, &rng);
  Tensor window = Tensor::RandomGaussian({2, 16}, &rng, 0.0, 1.0);
  auto out = model.Forward(SmallTransforms(), window, false);
  EXPECT_TRUE(out.step_errors.empty());
}

TEST(MaceModelTest, ParameterCountConsistent) {
  Rng rng(3);
  MaceModel model(SmallConfig(), 2, 12, &rng);
  int64_t total = 0;
  for (const Tensor& p : model.Parameters()) total += p.numel();
  EXPECT_EQ(total, model.ParameterCount());
  EXPECT_GT(model.PeakActivationElements(), 0);
}

TEST(MaceModelTest, AblationDropsCharacterizationParams) {
  Rng rng(4);
  MaceConfig with = SmallConfig();
  MaceConfig without = SmallConfig();
  without.use_freq_characterization = false;
  MaceModel a(with, 2, 12, &rng);
  Rng rng2(4);
  MaceModel b(without, 2, 12, &rng2);
  EXPECT_GT(a.ParameterCount(), b.ParameterCount());
}

TEST(MaceModelTest, VanillaConvAblationStillRuns) {
  Rng rng(5);
  MaceConfig config = SmallConfig();
  config.use_dualistic_freq = false;
  MaceModel model(config, 2, 12, &rng);
  Tensor window = Tensor::RandomGaussian({2, 16}, &rng, 0.0, 1.0);
  auto out = model.Forward(SmallTransforms(), window, true);
  EXPECT_TRUE(std::isfinite(out.loss.item()));
}

TEST(MaceModelTest, TrainingReducesLossOnFixedWindow) {
  Rng rng(6);
  MaceConfig config = SmallConfig();
  MaceModel model(config, 2, 12, &rng);
  const ServiceTransforms transforms = SmallTransforms();
  // A pure in-subspace signal: reconstructable in principle.
  std::vector<double> values(2 * 16);
  for (int f = 0; f < 2; ++f) {
    for (int t = 0; t < 16; ++t) {
      values[f * 16 + t] =
          std::sin(2.0 * std::numbers::pi * (2 + f) * t / 16.0);
    }
  }
  Tensor window = Tensor::FromVector(values, {2, 16});
  nn::Adam adam(model.Parameters(), 5e-3);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 150; ++step) {
    auto out = model.Forward(transforms, window, false);
    if (step == 0) first = out.loss.item();
    last = out.loss.item();
    adam.ZeroGrad();
    out.loss.Backward();
    adam.ClipGradNorm(5.0);
    adam.Step();
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(MaceModelTest, BranchErrorsReported) {
  Rng rng(7);
  MaceModel model(SmallConfig(), 2, 12, &rng);
  Tensor window = Tensor::RandomGaussian({2, 16}, &rng, 0.0, 1.0);
  auto out = model.Forward(SmallTransforms(), window, false);
  EXPECT_GE(out.mean_err_peak, 0.0);
  EXPECT_GE(out.mean_err_valley, 0.0);
  // Loss is the mean of the two branch means.
  EXPECT_NEAR(out.loss.item(),
              0.5 * (out.mean_err_peak + out.mean_err_valley), 1e-9);
}

TEST(MaceModelTest, AmplitudePhaseReconstructionIdentity) {
  // The amplitude sqrt(x + eps) and the unit-phase denominator share one
  // epsilon and operand order, so amp * unit reconstructs (re, im) to an
  // ulp. With the old mismatched epsilons (sqrt(x + 1e-8) amplitude vs
  // sqrt(x) + 1e-12 denominator) a dead base with re = 1e-9 reconstructed
  // to ~1e-4 — five orders of magnitude of bias.
  for (double r : {0.0, 1e-9, -1e-9, 1e-3, 2.5, -117.0}) {
    for (double i : {0.0, 1e-10, -0.5, 3.25}) {
      const double amp =
          std::sqrt(r * r + i * i + MaceModel::kSpectrumEpsilon);
      const double denominator =
          std::sqrt(r * r + i * i + MaceModel::kSpectrumEpsilon);
      EXPECT_DOUBLE_EQ(amp * (r / denominator), r) << "re " << r << " im "
                                                   << i;
      EXPECT_DOUBLE_EQ(amp * (i / denominator), i) << "re " << r << " im "
                                                   << i;
    }
  }
}

TEST(MaceModelTest, ForwardBatchMatchesPerWindowForwardExactly) {
  Rng rng(5);
  MaceModel model(SmallConfig(), /*num_features=*/3,
                  /*num_coeff_columns=*/12, &rng);
  const ServiceTransforms transforms = SmallTransforms();
  Rng data_rng(17);
  std::vector<Tensor> windows;
  for (int b = 0; b < 5; ++b) {
    windows.push_back(Tensor::RandomGaussian({3, 16}, &data_rng, 0.0, 1.0));
  }
  MaceModel::BatchOutput batch = model.ForwardBatch(transforms, windows);
  ASSERT_EQ(batch.step_errors.size(), windows.size());
  for (size_t b = 0; b < windows.size(); ++b) {
    const MaceModel::Output single =
        model.Forward(transforms, windows[b], /*want_step_errors=*/true);
    ASSERT_EQ(batch.step_errors[b].size(), single.step_errors.size());
    for (size_t t = 0; t < single.step_errors.size(); ++t) {
      EXPECT_DOUBLE_EQ(batch.step_errors[b][t], single.step_errors[t])
          << "window " << b << " step " << t;
    }
  }
  // And under inference mode: same values, no graph.
  tensor::NoGradGuard no_grad;
  MaceModel::BatchOutput inference = model.ForwardBatch(transforms, windows);
  for (size_t b = 0; b < windows.size(); ++b) {
    for (size_t t = 0; t < inference.step_errors[b].size(); ++t) {
      EXPECT_DOUBLE_EQ(inference.step_errors[b][t], batch.step_errors[b][t])
          << "window " << b << " step " << t;
    }
  }
}

TEST(MaceModelDeathTest, RejectsMismatchedTransforms) {
  Rng rng(8);
  MaceModel model(SmallConfig(), 2, 12, &rng);
  const ServiceTransforms wrong = MakeServiceTransforms(16, {1, 2, 3});
  Tensor window = Tensor::Zeros({2, 16});
  EXPECT_DEATH(model.Forward(wrong, window, false), "columns");
}

}  // namespace
}  // namespace mace::core
