#include "online/trainer.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "core/streaming.h"
#include "history/store.h"
#include "online/consensus.h"
#include "online/drift.h"
#include "online/ensemble.h"
#include "online/rolling_buffer.h"
#include "serve/frontend.h"
#include "ts/generator.h"

namespace mace::online {
namespace {

core::MaceConfig TinyConfig() {
  core::MaceConfig config;
  config.window = 16;
  config.train_stride = 4;
  config.score_stride = 4;
  config.num_bases = 4;
  config.epochs = 1;
  config.batch_size = 4;
  return config;
}

ts::NormalPattern OnlinePattern() {
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = 8.0;
  pattern.noise_stddev = 0.04;
  return pattern;  // one feature
}

std::vector<std::vector<double>> NormalRows(size_t n, size_t t0,
                                            uint64_t seed) {
  Rng rng(seed);
  return ts::GenerateNormal(OnlinePattern(), n, t0, &rng).values();
}

std::shared_ptr<core::MaceDetector> FittedBase() {
  Rng rng(7);
  std::vector<ts::ServiceData> services(1);
  services[0].name = "svc";
  services[0].train = ts::GenerateNormal(OnlinePattern(), 240, 0, &rng);
  auto detector = std::make_shared<core::MaceDetector>(TinyConfig());
  MACE_CHECK_OK(detector->Fit(services));
  return detector;
}

OnlineConfig TinyOnlineConfig() {
  OnlineConfig config;
  config.model = TinyConfig();
  config.buffer_capacity = 160;
  config.min_refit_rows = 64;
  config.refit_interval = 64;
  config.ensemble_size = 2;
  config.refit_threads = 2;
  return config;
}

// ---------------------------------------------------------------- buffer

TEST(RollingBufferTest, RingSemanticsAndCounters) {
  RollingWindowBuffer buffer(4, 2);
  for (int i = 0; i < 6; ++i) {
    buffer.OnObservation({static_cast<double>(i), 10.0 + i}, i == 1);
  }
  buffer.OnObservation({1.0, 2.0, 3.0}, false);  // wrong width: dropped
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_appended(), 6u);
  EXPECT_EQ(buffer.contaminated_rows(), 1u);
  const ts::TimeSeries snapshot = buffer.Snapshot();
  ASSERT_EQ(snapshot.length(), 4u);
  // Oldest surviving row is #2 (capacity 4, 6 appended).
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(snapshot.value(t, 0), static_cast<double>(t + 2));
  }
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.total_appended(), 6u);  // lifetime clock keeps counting
}

// ------------------------------------------------------------- consensus

TEST(ConsensusTest, PoliciesCombineRatios) {
  const std::vector<double> thresholds = {1.0, 1.0};
  auto all = MakeConsensusPolicy(ConsensusKind::kAllVote);
  auto max = MakeConsensusPolicy(ConsensusKind::kMax);
  auto median = MakeConsensusPolicy(ConsensusKind::kQuantile, 0.5);

  // Both generations past threshold: everybody fires.
  core::StepVerdict verdict = all->Judge({2.0, 3.0}, thresholds);
  EXPECT_TRUE(verdict.voted);
  EXPECT_TRUE(verdict.anomaly);
  EXPECT_DOUBLE_EQ(verdict.score, 2.0);  // min ratio

  // One dissenter: all-vote vetoes, max fires.
  verdict = all->Judge({0.5, 3.0}, thresholds);
  EXPECT_TRUE(verdict.voted);
  EXPECT_FALSE(verdict.anomaly);
  verdict = max->Judge({0.5, 3.0}, thresholds);
  EXPECT_TRUE(verdict.anomaly);
  EXPECT_DOUBLE_EQ(verdict.score, 3.0);

  // Median of {0.5, 3.0} interpolates to 1.75: fires.
  verdict = median->Judge({0.5, 3.0}, thresholds);
  EXPECT_TRUE(verdict.anomaly);
  EXPECT_DOUBLE_EQ(verdict.score, 1.75);

  // No scores: abstain.
  EXPECT_FALSE(all->Judge({}, {}).voted);

  // Degenerate threshold saturates its ratio anomalous.
  verdict = max->Judge({0.1}, {0.0});
  EXPECT_TRUE(verdict.anomaly);
  verdict = median->Judge({0.1, 0.1}, {0.0, 0.0});
  EXPECT_TRUE(verdict.anomaly);
  EXPECT_TRUE(std::isfinite(verdict.score));
}

TEST(ConsensusTest, ParseNames) {
  EXPECT_EQ(ParseConsensusPolicy("all")->kind(), ConsensusKind::kAllVote);
  EXPECT_EQ(ParseConsensusPolicy("max")->kind(), ConsensusKind::kMax);
  EXPECT_EQ(ParseConsensusPolicy("quantile")->kind(),
            ConsensusKind::kQuantile);
  EXPECT_EQ(ParseConsensusPolicy("bogus"), nullptr);
}

// ----------------------------------------------------------- drift gate

TEST(DriftTest, SubspaceOverlapPrincipalAngles) {
  const int window = 16;
  core::PatternSubspace a, b;
  a.bases = {1, 2, 3};
  b.bases = {1, 2, 3};
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 1.0, 1e-9);

  b.bases = {4, 5, 6};  // distinct Fourier bins are orthogonal
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 0.0, 1e-9);

  a.bases = {1, 2};
  b.bases = {1, 3};  // half the (4-dim) energy shared
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 0.5, 1e-9);

  // DC and Nyquist carry one column each, interior bins two.
  a.bases = {0};
  b.bases = {0};
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 1.0, 1e-9);
  b.bases = {8};
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 0.0, 1e-9);

  // Duplicates and out-of-range bases are ignored, not double-counted.
  a.bases = {1, 1, 99, -3};
  b.bases = {1};
  EXPECT_NEAR(SubspaceOverlap(a, b, window), 1.0, 1e-9);
}

TEST(DriftTest, GateDecisions) {
  const DriftGateConfig config;
  EXPECT_EQ(GateCandidate(0.99, true, config), GateDecision::kSkip);
  EXPECT_EQ(GateCandidate(0.99, false, config), GateDecision::kPromote);
  EXPECT_EQ(GateCandidate(0.7, true, config), GateDecision::kPromote);
  EXPECT_EQ(GateCandidate(0.3, true, config),
            GateDecision::kPromoteDrift);
  EXPECT_EQ(GateCandidate(0.3, false, config),
            GateDecision::kPromoteDrift);
}

// -------------------------------------------------------------- ensemble

TEST(ModelEnsembleTest, CopyOnWriteRotation) {
  ModelEnsemble ensemble(3);
  EXPECT_EQ(ensemble.size(), 0u);
  EXPECT_EQ(ensemble.Newest(), nullptr);

  auto model = std::make_shared<core::MaceDetector>(TinyConfig());
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(ensemble.Promote(model, static_cast<double>(i)),
              static_cast<uint64_t>(i));
  }
  EXPECT_TRUE(ensemble.full());

  // A reader's snapshot survives a later promotion untouched.
  const ModelEnsemble::Snapshot before = ensemble.generations();
  ensemble.Promote(model, 4.0);
  ASSERT_EQ(before->size(), 3u);
  EXPECT_EQ(before->back().version, 3u);
  const ModelEnsemble::Snapshot after = ensemble.generations();
  ASSERT_EQ(after->size(), 3u);
  EXPECT_EQ(after->front().version, 2u);  // oldest evicted
  EXPECT_EQ(after->back().version, 4u);
  EXPECT_EQ(ensemble.promotions(), 4u);
}

// ------------------------------------------ consensus bit into history

std::vector<history::Record> AllRecords(const history::HistoryStore& store,
                                        size_t tenant_index) {
  std::vector<history::Record> records;
  store.VisitRange(tenant_index, 0, std::numeric_limits<int64_t>::max(),
                   [&](history::RecordSpan span) {
                     records.insert(records.end(), span.data,
                                    span.data + span.size);
                   });
  return records;
}

TEST(EnsembleBindingTest, ConsensusBitOverridesThresholdBit) {
  const std::shared_ptr<core::MaceDetector> base = FittedBase();
  history::HistoryStore store(history::HistoryConfig{});
  const auto tenant = store.Intern("t/0");
  // Base threshold below any score: without consensus every bit is 1.
  store.SetThreshold(tenant, -1.0);

  // One generation with an unreachable threshold: all-vote consensus
  // says "normal" on every step.
  ModelEnsemble ensemble(2);
  ensemble.Promote(base, 1e12);
  auto policy = MakeConsensusPolicy(ConsensusKind::kAllVote);
  EnsembleBinding binding(&ensemble, policy.get());

  auto scorer = core::StreamingScorer::Create(base.get(), 0);
  ASSERT_TRUE(scorer.ok());
  scorer->AttachHistory(&store, tenant, 0);
  scorer->AttachOnline(nullptr, &binding);

  const auto rows = NormalRows(60, 0, 21);
  for (const auto& row : rows) ASSERT_TRUE(scorer->Push(row).ok());

  const auto records = AllRecords(store, tenant);
  ASSERT_EQ(records.size(), 60u - 16u + 1);  // emit latency < window steps
  for (const history::Record& record : records) {
    EXPECT_EQ(record.anomaly, 0) << "consensus veto lost at timestamp "
                                 << record.timestamp;
    EXPECT_GT(record.score, -1.0f);  // stored score stays the base's
  }

  // Flip the generation threshold to ~0: consensus now fires everywhere.
  const auto tenant2 = store.Intern("t/1");
  store.SetThreshold(tenant2, 1e12);  // base bit would be 0
  ModelEnsemble eager(2);
  eager.Promote(base, 1e-12);
  EnsembleBinding eager_binding(&eager, policy.get());
  auto scorer2 = core::StreamingScorer::Create(base.get(), 0);
  ASSERT_TRUE(scorer2.ok());
  scorer2->AttachHistory(&store, tenant2, 0);
  scorer2->AttachOnline(nullptr, &eager_binding);
  for (const auto& row : rows) ASSERT_TRUE(scorer2->Push(row).ok());
  const auto records2 = AllRecords(store, tenant2);
  ASSERT_EQ(records2.size(), 60u - 16u + 1);
  for (const history::Record& record : records2) {
    EXPECT_EQ(record.anomaly, 1);
  }
}

// --------------------------------------------------------------- trainer

TEST(OnlineTrainerTest, RefitPromotesGenerations) {
  OnlineTrainer trainer(TinyOnlineConfig());
  core::StreamBinding binding = trainer.Bind("t/0", 1);
  ASSERT_NE(binding.sink, nullptr);
  ASSERT_NE(binding.ensemble, nullptr);

  const std::shared_ptr<core::MaceDetector> base = FittedBase();
  auto scorer = core::StreamingScorer::Create(base.get(), 0);
  ASSERT_TRUE(scorer.ok());
  scorer->AttachOnline(binding.sink, binding.ensemble.get());

  size_t step = 0;
  const auto feed = [&](size_t n) {
    const auto rows = NormalRows(n, step, 33);
    for (const auto& row : rows) ASSERT_TRUE(scorer->Push(row).ok());
    step += n;
  };

  feed(100);
  EXPECT_EQ(trainer.PumpRefits(), 1u);
  const ModelEnsemble* ensemble = trainer.ensemble("t/0");
  ASSERT_NE(ensemble, nullptr);
  EXPECT_EQ(ensemble->size(), 1u);

  feed(64);
  EXPECT_EQ(trainer.PumpRefits(), 1u);
  feed(64);
  EXPECT_EQ(trainer.PumpRefits(), 1u);

  const OnlineTrainer::Stats stats = trainer.stats();
  EXPECT_EQ(stats.streams, 1u);
  EXPECT_EQ(stats.refits, 3u);
  EXPECT_EQ(stats.refit_failures, 0u);
  EXPECT_EQ(stats.promotions + stats.skips, 3u);
  EXPECT_GE(stats.promotions, 2u);  // ensemble had room for two
  EXPECT_EQ(ensemble->size(), 2u);

  // Nothing due right after a refit.
  EXPECT_EQ(trainer.PumpRefits(), 0u);

  // The stream keeps scoring (and voting) after promotions.
  feed(20);
  EXPECT_GT(scorer->scores_emitted(), 0u);
}

TEST(OnlineTrainerTest, RefitIsBitDeterministicAcrossPoolSizes) {
  OnlineConfig narrow = TinyOnlineConfig();
  narrow.refit_threads = 1;
  OnlineConfig wide = TinyOnlineConfig();
  wide.refit_threads = 3;

  OnlineTrainer a(narrow);
  OnlineTrainer b(wide);
  core::StreamBinding bind_a = a.Bind("k/0", 1);
  core::StreamBinding bind_b = b.Bind("k/0", 1);

  const auto rows = NormalRows(128, 0, 11);
  for (const auto& row : rows) {
    bind_a.sink->OnObservation(row, false);
    bind_b.sink->OnObservation(row, false);
  }
  ASSERT_EQ(a.PumpRefits(), 1u);
  ASSERT_EQ(b.PumpRefits(), 1u);

  const auto model_a = a.ensemble("k/0")->Newest();
  const auto model_b = b.ensemble("k/0")->Newest();
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);

  // Same buffer contents + same seed => bit-identical training run,
  // regardless of the refit pool width.
  const std::vector<double>& losses_a = model_a->epoch_losses();
  const std::vector<double>& losses_b = model_b->epoch_losses();
  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]);
  }
  // And bit-identical scores through the streaming surface.
  auto scorer_a = core::StreamingScorer::Create(model_a.get(), 0);
  auto scorer_b = core::StreamingScorer::Create(model_b.get(), 0);
  ASSERT_TRUE(scorer_a.ok() && scorer_b.ok());
  const auto probe = NormalRows(48, 500, 99);
  for (const auto& row : probe) {
    auto out_a = scorer_a->Push(row);
    auto out_b = scorer_b->Push(row);
    ASSERT_TRUE(out_a.ok() && out_b.ok());
    ASSERT_EQ(out_a->size(), out_b->size());
    for (size_t i = 0; i < out_a->size(); ++i) {
      EXPECT_EQ((*out_a)[i], (*out_b)[i]);
    }
  }
}

// Satellite (a): Reset() must detach the rolling buffer and the ensemble
// binding exactly like it detaches history — a recycled session across
// two model generations must not leak its stale rows into the next refit.
TEST(OnlineTrainerTest, ResetDetachesBufferAcrossGenerations) {
  OnlineTrainer trainer(TinyOnlineConfig());
  const std::shared_ptr<core::MaceDetector> base = FittedBase();

  // Session 1 feeds 96 rows and triggers generation 1.
  core::StreamBinding first = trainer.Bind("a/0", 1);
  auto scorer = core::StreamingScorer::Create(base.get(), 0);
  ASSERT_TRUE(scorer.ok());
  scorer->AttachOnline(first.sink, first.ensemble.get());
  for (const auto& row : NormalRows(96, 0, 5)) {
    ASSERT_TRUE(scorer->Push(row).ok());
  }
  ASSERT_EQ(trainer.PumpRefits(), 1u);
  const RollingWindowBuffer* buffer = trainer.buffer("a/0");
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->total_appended(), 96u);

  // Recycle the session. Rows pushed through the recycled scorer before
  // it is re-bound are another stream's data and must NOT reach the
  // buffer.
  scorer->Reset();
  EXPECT_FALSE(scorer->online_attached());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(scorer->Push({999.0}).ok());
  }
  EXPECT_EQ(buffer->total_appended(), 96u) << "stale session leaked rows";

  // Session 2 re-binds the same stream key and drives generation 2: the
  // refit sees only legitimately-bound rows.
  scorer->Reset();
  core::StreamBinding second = trainer.Bind("a/0", 1);
  EXPECT_EQ(second.sink, first.sink);  // same stream, same buffer
  scorer->AttachOnline(second.sink, second.ensemble.get());
  for (const auto& row : NormalRows(64, 96, 6)) {
    ASSERT_TRUE(scorer->Push(row).ok());
  }
  ASSERT_EQ(trainer.PumpRefits(), 1u);
  EXPECT_EQ(buffer->total_appended(), 160u);
  const ts::TimeSeries snapshot = buffer->Snapshot();
  for (size_t t = 0; t < snapshot.length(); ++t) {
    EXPECT_LT(std::fabs(snapshot.value(t, 0)), 100.0)
        << "poison row survived into refit data";
  }
  EXPECT_EQ(trainer.ensemble("a/0")->promotions(), 2u);
}

// Satellite (c): concurrent PushMany against mid-flight generation
// promotion — the tsan target for the ensemble's copy-on-write snapshot
// contract. Zero lost steps, no torn reads.
TEST(OnlineConcurrencyTest, PushManyDuringPromotions) {
  const std::shared_ptr<core::MaceDetector> base = FittedBase();
  ModelEnsemble ensemble(3);
  ensemble.Promote(base, 1.0);
  auto policy = MakeConsensusPolicy(ConsensusKind::kAllVote);
  EnsembleBinding binding(&ensemble, policy.get());
  RollingWindowBuffer buffer(256, 1);

  auto scorer = core::StreamingScorer::Create(base.get(), 0);
  ASSERT_TRUE(scorer.ok());
  scorer->AttachOnline(&buffer, &binding);

  std::atomic<bool> stop{false};
  std::thread promoter([&] {
    uint64_t spins = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ensemble.Promote(base, 1.0 + static_cast<double>(spins % 7));
      (void)buffer.Snapshot();  // concurrent reader of the refit feed
      ++spins;
      std::this_thread::yield();
    }
  });

  size_t emitted = 0;
  size_t pushed = 0;
  const auto rows = NormalRows(8, 0, 77);
  for (int iter = 0; iter < 40; ++iter) {
    auto batch = scorer->PushMany(rows);
    ASSERT_TRUE(batch.ok());
    pushed += rows.size();
    for (const auto& per_row : *batch) emitted += per_row.size();
  }
  stop.store(true);
  promoter.join();

  EXPECT_EQ(pushed, 320u);
  EXPECT_EQ(emitted, 320u - 16u + 1) << "promotion lost emitted steps";
  EXPECT_EQ(buffer.total_appended(), 320u) << "promotion lost buffer rows";
}

// Serve-level variant: sessions opened through SessionRegistry score
// under a live background refit pump; every submitted observation must
// be scored and every expected step emitted.
TEST(OnlineConcurrencyTest, ServeScoresWhileTrainerPumps) {
  OnlineConfig online_config = TinyOnlineConfig();
  OnlineTrainer trainer(online_config);
  history::HistoryStore store(history::HistoryConfig{});

  serve::ServeConfig config;
  config.num_shards = 2;
  config.history = &store;
  config.online = &trainer;

  const std::shared_ptr<core::MaceDetector> base = FittedBase();
  auto frontend = serve::ServeFrontend::Create(base, config);
  ASSERT_TRUE(frontend.ok());
  trainer.Start(std::chrono::milliseconds(1));

  const std::vector<std::string> tenants = {"alpha", "beta"};
  constexpr size_t kSteps = 200;
  std::vector<std::future<serve::ScoreBatch>> futures;
  for (size_t t = 0; t < kSteps; ++t) {
    for (const std::string& tenant : tenants) {
      const auto rows = NormalRows(1, t, 13);
      auto submitted = (*frontend)->Submit(tenant, 0, rows[0]);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(*submitted));
    }
  }
  size_t emitted = 0;
  for (auto& future : futures) {
    const serve::ScoreBatch batch = future.get();
    ASSERT_TRUE(batch.status.ok());
    EXPECT_FALSE(batch.dropped);
    emitted += batch.scores.size();
  }
  (*frontend)->Flush();
  trainer.Stop();
  trainer.PumpRefits();  // drain anything left due

  // Zero lost steps across both sessions despite concurrent promotions.
  EXPECT_EQ(emitted, tenants.size() * (kSteps - 16 + 1));
  const serve::ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.scored_steps, tenants.size() * kSteps);
  EXPECT_GE(trainer.stats().refits, 1u);
  // Both streams fed their rolling buffers through the serve path.
  for (const std::string& tenant : tenants) {
    const RollingWindowBuffer* buffer = trainer.buffer(tenant + "/0");
    ASSERT_NE(buffer, nullptr);
    EXPECT_EQ(buffer->total_appended(), kSteps);
  }
}

}  // namespace
}  // namespace mace::online
