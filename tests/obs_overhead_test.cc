// Zero-overhead guard for the obs instrumentation: with detailed tracing
// off (MACE_TRACE unset), the instruments on the ScoreWindow hot path —
// one ScopedSpan, two StageTimer laps, three histogram marks and one
// cached counter — must cost well under 2% of a window's scoring time.

#include <algorithm>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "obs/trace.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MaceDetector FittedDetector() {
  Rng rng(11);
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = 10.0;
  pattern.noise_stddev = 0.05;
  pattern.feature_weights = {1.0, 0.7, 0.4};
  pattern.feature_lags = {0.0, 1.0, 2.0};
  ts::ServiceData service;
  service.name = "svc";
  service.train = ts::GenerateNormal(pattern, 400, 0, &rng);
  service.test = ts::GenerateNormal(pattern, 120, 400, &rng);
  MaceConfig config;
  config.epochs = 1;
  MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit({service}));
  return detector;
}

/// Cost of one span-equivalent (two clock reads + one histogram observe),
/// taken as the minimum of several reps so scheduler noise cannot inflate
/// it — the estimate errs toward understating window time, not overhead.
double SpanUnitSeconds() {
  obs::Histogram* histogram = obs::Metrics().GetHistogram(
      "obs_overhead_span_unit_seconds", "overhead guard scratch");
  constexpr int kIterations = 20000;
  double best = 1.0;
  for (int rep = 0; rep < 5; ++rep) {
    const double begin = NowSeconds();
    for (int i = 0; i < kIterations; ++i) {
      obs::StageTimer timer;
      timer.Mark(histogram);
    }
    best = std::min(best, (NowSeconds() - begin) / kIterations);
  }
  return best;
}

TEST(ObsOverheadTest, DisabledTraceScoreWindowOverheadNegligible) {
  // This guard is about the always-on mode; detailed tracing is opt-in.
  obs::TraceRecorder::Get().SetDetailed(false);

  MaceDetector detector = FittedDetector();
  const int window = detector.config().window;
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window),
      std::vector<double>(3, 0.1));

  // Warm up instrument statics and caches.
  for (int i = 0; i < 5; ++i) {
    MACE_CHECK_OK(detector.ScoreWindow(0, rows).status());
  }

  // Minimum over reps, matching SpanUnitSeconds: on a loaded CI machine
  // scheduler noise only ever inflates a wall-clock sample, so the min is
  // the stable noise-free estimate on both sides of the ratio. (A median
  // here was observed to be flaky under contention.)
  constexpr int kReps = 60;
  double min_window = 1.0;
  for (int i = 0; i < kReps; ++i) {
    const double begin = NowSeconds();
    auto errors = detector.ScoreWindow(0, rows);
    ASSERT_TRUE(errors.ok());
    min_window = std::min(min_window, NowSeconds() - begin);
  }

  // Instrumentation on the fused-kernel path: the ScoreWindow span + one
  // cached counter increment ≈ 2 span units, plus one unit of headroom.
  // The per-stage laps of the op graph are gone — the fused kernel
  // (src/kernel/) runs all four stages in one uninstrumented call.
  const double instrumentation = 3.0 * SpanUnitSeconds();
  ASSERT_GT(min_window, 0.0);
  // The instrument cost is fixed while the kernel keeps getting faster,
  // so a pure ratio bound would fail every kernel speedup without a
  // single extra nanosecond of obs cost. The contract is two-armed:
  // under 3% of a window, or under half a microsecond flat — either way
  // observability charges a negligible slice of scoring.
  EXPECT_TRUE(instrumentation / min_window < 0.03 ||
              instrumentation < 0.5e-6)
      << "instrumentation " << instrumentation * 1e9 << " ns vs window "
      << min_window * 1e9 << " ns";
}

TEST(ObsOverheadTest, NoTraceEventsAccumulateWhenDisabled) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
  recorder.SetDetailed(false);
  recorder.Drain();
  MaceDetector detector = FittedDetector();
  const int window = detector.config().window;
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window), std::vector<double>(3, 0.1));
  for (int i = 0; i < 10; ++i) {
    MACE_CHECK_OK(detector.ScoreWindow(0, rows).status());
  }
  EXPECT_TRUE(recorder.Events().empty());
}

}  // namespace
}  // namespace mace::core
