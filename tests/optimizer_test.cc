#include "nn/optimizer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace mace::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Loss (x - target)^2 summed; minimum at target.
double RunSteps(Optimizer* optimizer, Tensor x,
                const std::vector<double>& target, int steps) {
  Tensor t = Tensor::FromVector(target, Shape{2});
  double loss_value = 0.0;
  for (int i = 0; i < steps; ++i) {
    Tensor loss = Sum(Square(Sub(x, t)));
    loss_value = loss.item();
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return loss_value;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({5.0, -3.0}, {2}, true);
  Sgd sgd({x}, /*learning_rate=*/0.1);
  const double final_loss = RunSteps(&sgd, x, {1.0, 2.0}, 100);
  EXPECT_LT(final_loss, 1e-8);
  EXPECT_NEAR(x.data()[0], 1.0, 1e-4);
  EXPECT_NEAR(x.data()[1], 2.0, 1e-4);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor a = Tensor::FromVector({5.0, -3.0}, {2}, true);
  Tensor b = Tensor::FromVector({5.0, -3.0}, {2}, true);
  Sgd plain({a}, 0.02);
  Sgd momentum({b}, 0.02, 0.9);
  const double plain_loss = RunSteps(&plain, a, {0.0, 0.0}, 20);
  const double momentum_loss = RunSteps(&momentum, b, {0.0, 0.0}, 20);
  EXPECT_LT(momentum_loss, plain_loss);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({5.0, -3.0}, {2}, true);
  Adam adam({x}, /*learning_rate=*/0.2);
  const double final_loss = RunSteps(&adam, x, {-1.0, 4.0}, 300);
  EXPECT_LT(final_loss, 1e-4);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Tensor x = Tensor::FromVector({1.0}, {1}, true);
  Adam adam({x}, 0.1);
  Tensor loss = Sum(Square(x));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(x.data()[0], 1.0 - 0.1, 1e-6);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Tensor x = Tensor::FromVector({2.0}, {1}, true);
  Sgd sgd({x}, 0.1);
  Sum(Square(x)).Backward();
  EXPECT_NE(x.grad()[0], 0.0);
  sgd.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor x = Tensor::FromVector({0.0, 0.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  // Manually set a gradient of norm 10.
  x.node()->grad = {6.0, 8.0};
  sgd.ClipGradNorm(5.0);
  const double norm = std::hypot(x.grad()[0], x.grad()[1]);
  EXPECT_NEAR(norm, 5.0, 1e-9);
  // Direction is preserved.
  EXPECT_NEAR(x.grad()[0] / x.grad()[1], 0.75, 1e-9);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenSmall) {
  Tensor x = Tensor::FromVector({0.0}, {1}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {0.5};
  sgd.ClipGradNorm(5.0);
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.5);
}

TEST(OptimizerTest, ClipGradNormNoOpOnZeroGradients) {
  Tensor x = Tensor::FromVector({1.0, 2.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {0.0, 0.0};
  sgd.ClipGradNorm(5.0);
  EXPECT_EQ(x.grad()[0], 0.0);
  EXPECT_EQ(x.grad()[1], 0.0);
}

TEST(OptimizerTest, ClipGradNormSurvivesSumOfSquaresOverflow) {
  // |g| = 1e200 squares to 1e400 = inf, so the naive norm is inf and the
  // naive scale max_norm/inf = 0 would silently zero the update. The
  // max-abs-scaled two-pass norm must clip to max_norm instead.
  Tensor x = Tensor::FromVector({0.0, 0.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {3e200, 4e200};
  sgd.ClipGradNorm(5.0);
  ASSERT_TRUE(std::isfinite(x.grad()[0]));
  ASSERT_TRUE(std::isfinite(x.grad()[1]));
  EXPECT_NE(x.grad()[0], 0.0);
  const double norm = std::hypot(x.grad()[0], x.grad()[1]);
  EXPECT_NEAR(norm, 5.0, 1e-9);
  EXPECT_NEAR(x.grad()[0] / x.grad()[1], 0.75, 1e-12);
}

TEST(OptimizerTest, ClipGradNormLeavesInfiniteGradientsUntouched) {
  // No finite rescale makes an inf gradient meaningful, and 0 * inf would
  // smear NaN across every parameter.
  Tensor x = Tensor::FromVector({0.0, 0.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {std::numeric_limits<double>::infinity(), 2.0};
  sgd.ClipGradNorm(5.0);
  EXPECT_TRUE(std::isinf(x.grad()[0]));
  EXPECT_DOUBLE_EQ(x.grad()[1], 2.0);
}

TEST(OptimizerTest, ClipGradNormLeavesNanGradientsUntouched) {
  Tensor x = Tensor::FromVector({0.0, 0.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {std::numeric_limits<double>::quiet_NaN(), 2.0};
  sgd.ClipGradNorm(5.0);
  EXPECT_TRUE(std::isnan(x.grad()[0]));
  EXPECT_DOUBLE_EQ(x.grad()[1], 2.0);
}

TEST(OptimizerTest, LoadGradientsAssignsScaledValues) {
  Tensor x = Tensor::FromVector({0.0, 0.0}, {2}, true);
  Sgd sgd({x}, 0.1);
  x.node()->grad = {100.0, 100.0};  // stale; Load must overwrite, not add
  sgd.LoadGradients({{3.0, -8.0}}, 0.25);
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.75);
  EXPECT_DOUBLE_EQ(x.grad()[1], -2.0);
}

TEST(OptimizerTest, LoadGradientsWithUnitScaleIsExact) {
  // scale = 1.0 must reproduce the source bits (the batch_size=1 training
  // path relies on this being the identity).
  Tensor x = Tensor::FromVector({0.0}, {1}, true);
  Sgd sgd({x}, 0.1);
  const double value = 0.1234567891234567;
  sgd.LoadGradients({{value}}, 1.0);
  EXPECT_EQ(x.grad()[0], value);
}

TEST(OptimizerDeathTest, RejectsNonDifferentiableParams) {
  Tensor fixed = Tensor::FromVector({1.0}, {1}, false);
  EXPECT_DEATH(Sgd({fixed}, 0.1), "differentiable");
}

}  // namespace
}  // namespace mace::nn
