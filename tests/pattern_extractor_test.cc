#include "core/pattern_extractor.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ts/generator.h"

namespace mace::core {
namespace {

ts::TimeSeries Sinusoids(size_t length, const std::vector<double>& cycles,
                         double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> values(length, std::vector<double>(1));
  for (size_t t = 0; t < length; ++t) {
    double v = 0.0;
    for (size_t i = 0; i < cycles.size(); ++i) {
      v += (1.0 / (1.0 + i)) *
           std::sin(2.0 * std::numbers::pi * cycles[i] * t / 40.0);
    }
    values[t][0] = v + rng.Gaussian(0.0, noise);
  }
  return ts::TimeSeries(std::move(values));
}

TEST(PatternExtractorTest, FindsDominantBases) {
  const ts::TimeSeries series = Sinusoids(800, {3.0, 7.0}, 0.02, 1);
  PatternExtractorOptions options;
  options.num_bases = 2;
  auto subspace = ExtractPattern(series, options);
  ASSERT_TRUE(subspace.ok());
  std::vector<int> bases = subspace->bases;
  std::sort(bases.begin(), bases.end());
  EXPECT_EQ(bases, (std::vector<int>{3, 7}));
}

TEST(PatternExtractorTest, StrongestFirstByIncidence) {
  const ts::TimeSeries series = Sinusoids(800, {5.0}, 0.02, 2);
  PatternExtractorOptions options;
  options.num_bases = 4;
  auto subspace = ExtractPattern(series, options);
  ASSERT_TRUE(subspace.ok());
  // The fundamental should rank first with full incidence.
  EXPECT_EQ(subspace->bases.front(), 5);
  EXPECT_EQ(subspace->incidence.size(), subspace->bases.size());
  for (size_t i = 1; i < subspace->incidence.size(); ++i) {
    EXPECT_LE(subspace->incidence[i], subspace->incidence[i - 1]);
  }
}

TEST(PatternExtractorTest, SkipDcControlsBinZero) {
  // A series with a large mean: DC dominates when not skipped.
  Rng rng(3);
  std::vector<std::vector<double>> values(400, std::vector<double>(1));
  for (auto& row : values) row[0] = 50.0 + rng.Gaussian(0.0, 0.1);
  ts::TimeSeries series(std::move(values));
  PatternExtractorOptions with_dc;
  with_dc.num_bases = 1;
  with_dc.skip_dc = false;
  EXPECT_EQ(ExtractPattern(series, with_dc)->bases.front(), 0);
  PatternExtractorOptions no_dc;
  no_dc.num_bases = 1;
  no_dc.skip_dc = true;
  EXPECT_NE(ExtractPattern(series, no_dc)->bases.front(), 0);
}

TEST(PatternExtractorTest, DeterministicForSameInput) {
  const ts::TimeSeries series = Sinusoids(600, {2.0, 9.0}, 0.1, 4);
  PatternExtractorOptions options;
  options.num_bases = 6;
  auto a = ExtractPattern(series, options);
  auto b = ExtractPattern(series, options);
  EXPECT_EQ(a->bases, b->bases);
}

TEST(PatternExtractorTest, BasesWithinOneSidedRange) {
  const ts::TimeSeries series = Sinusoids(600, {4.0}, 0.3, 5);
  PatternExtractorOptions options;
  options.num_bases = 20;
  auto subspace = ExtractPattern(series, options);
  ASSERT_TRUE(subspace.ok());
  for (int b : subspace->bases) {
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 20);
  }
  // All 20 non-DC bins available.
  EXPECT_EQ(subspace->bases.size(), 20u);
}

TEST(PatternExtractorTest, ErrorsOnBadOptions) {
  const ts::TimeSeries series = Sinusoids(100, {3.0}, 0.1, 6);
  PatternExtractorOptions bad;
  bad.num_bases = 0;
  EXPECT_FALSE(ExtractPattern(series, bad).ok());
  PatternExtractorOptions short_series;
  short_series.window = 400;
  EXPECT_FALSE(ExtractPattern(series, short_series).ok());
}

TEST(PatternExtractorTest, MultiFeatureCountsPooled) {
  // Two features with different dominant bases: both should surface.
  Rng rng(7);
  std::vector<std::vector<double>> values(800, std::vector<double>(2));
  for (size_t t = 0; t < values.size(); ++t) {
    values[t][0] = std::sin(2.0 * std::numbers::pi * 3.0 * t / 40.0) +
                   rng.Gaussian(0, 0.02);
    values[t][1] = std::sin(2.0 * std::numbers::pi * 8.0 * t / 40.0) +
                   rng.Gaussian(0, 0.02);
  }
  ts::TimeSeries series(std::move(values));
  PatternExtractorOptions options;
  options.num_bases = 2;
  auto subspace = ExtractPattern(series, options);
  std::vector<int> bases = subspace->bases;
  std::sort(bases.begin(), bases.end());
  EXPECT_EQ(bases, (std::vector<int>{3, 8}));
}

}  // namespace
}  // namespace mace::core
