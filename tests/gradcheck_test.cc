// Numerical gradient checking: every differentiable op is verified against
// central finite differences on random inputs (property-style, via
// parameterized tests).

#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mace::tensor {
namespace {

using LossFn = std::function<Tensor(const Tensor&)>;

/// Checks autograd of `fn` (scalar-valued) at `x` against central
/// differences.
void CheckGradient(const std::vector<double>& values, const Shape& shape,
                   const LossFn& fn, double eps = 1e-6, double tol = 1e-4) {
  Tensor x = Tensor::FromVector(values, shape, /*requires_grad=*/true);
  Tensor loss = fn(x);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  const std::vector<double> analytic = x.grad();

  for (size_t i = 0; i < values.size(); ++i) {
    std::vector<double> plus = values, minus = values;
    plus[i] += eps;
    minus[i] -= eps;
    const double fp = fn(Tensor::FromVector(plus, shape)).item();
    const double fm = fn(Tensor::FromVector(minus, shape)).item();
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * (1.0 + std::fabs(numeric)))
        << "element " << i;
  }
}

struct OpCase {
  std::string name;
  LossFn fn;
  /// Input generator: values away from non-differentiable points.
  std::function<std::vector<double>(Rng*)> make_input;
  Shape shape;
};

std::vector<double> SmoothRandom(Rng* rng, size_t n, double lo, double hi,
                                 double keep_away_from_zero = 0.0) {
  std::vector<double> v(n);
  for (double& x : v) {
    do {
      x = rng->Uniform(lo, hi);
    } while (std::fabs(x) < keep_away_from_zero);
  }
  return v;
}

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) {
  const OpCase& op = GetParam();
  Rng rng(0xFEED);
  for (int trial = 0; trial < 3; ++trial) {
    CheckGradient(op.make_input(&rng), op.shape, op.fn);
  }
}

std::vector<OpCase> MakeCases() {
  auto in6 = [](double lo, double hi, double away = 0.0) {
    return [=](Rng* rng) { return SmoothRandom(rng, 6, lo, hi, away); };
  };
  std::vector<OpCase> cases;
  cases.push_back({"add_self", [](const Tensor& x) {
                     return Sum(Add(x, MulScalar(x, 2.0)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"mul_shared", [](const Tensor& x) {
                     return Sum(Mul(x, x));
                   },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"div_by_const", [](const Tensor& x) {
                     Tensor denom = Tensor::Full({6}, 2.5);
                     return Sum(Div(x, denom));
                   },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"div_as_denominator", [](const Tensor& x) {
                     Tensor numer = Tensor::Full({6}, 3.0);
                     return Sum(Div(numer, x));
                   },
                   in6(0.5, 2.0), Shape{6}});
  cases.push_back({"broadcast_add", [](const Tensor& x) {
                     Tensor row = Tensor::FromVector({1.0, 2.0, 3.0}, Shape{3});
                     return Sum(Square(Add(x, row)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"maximum_vs_const", [](const Tensor& x) {
                     Tensor c = Tensor::Full({6}, 0.5);
                     return Sum(Maximum(x, c));
                   },
                   in6(-2, 2, /*away from 0.5 kink*/ 0.0), Shape{6}});
  cases.push_back({"tanh", [](const Tensor& x) { return Sum(Tanh(x)); },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"sigmoid",
                   [](const Tensor& x) { return Sum(Sigmoid(x)); },
                   in6(-3, 3), Shape{6}});
  cases.push_back({"exp", [](const Tensor& x) { return Sum(Exp(x)); },
                   in6(-1, 1), Shape{6}});
  cases.push_back({"log", [](const Tensor& x) { return Sum(Log(x)); },
                   in6(0.2, 3.0), Shape{6}});
  cases.push_back({"sqrt", [](const Tensor& x) { return Sum(Sqrt(x)); },
                   in6(0.3, 3.0), Shape{6}});
  cases.push_back({"relu", [](const Tensor& x) { return Sum(Relu(x)); },
                   in6(-2, 2, 0.05), Shape{6}});
  cases.push_back({"abs", [](const Tensor& x) { return Sum(Abs(x)); },
                   in6(-2, 2, 0.05), Shape{6}});
  cases.push_back({"square", [](const Tensor& x) { return Sum(Square(x)); },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"pow", [](const Tensor& x) { return Sum(Pow(x, 2.5)); },
                   in6(0.3, 2.0), Shape{6}});
  cases.push_back({"signed_pow",
                   [](const Tensor& x) { return Sum(SignedPow(x, 5.0)); },
                   in6(-1.5, 1.5, 0.1), Shape{6}});
  cases.push_back({"signed_root",
                   [](const Tensor& x) { return Sum(SignedRoot(x, 5.0)); },
                   in6(-2.0, 2.0, 0.5), Shape{6}});
  cases.push_back({"reshape_chain", [](const Tensor& x) {
                     return Sum(Square(Reshape(x, {3, 2})));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"transpose", [](const Tensor& x) {
                     Tensor w = Tensor::FromVector({1, 2, 3, 4, 5, 6},
                                                   {3, 2});
                     return Sum(Mul(Transpose(x), w));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"slice", [](const Tensor& x) {
                     return Sum(Square(Slice(x, 1, 1, 3)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"concat", [](const Tensor& x) {
                     Tensor left = Slice(x, 1, 0, 1);
                     Tensor right = Slice(x, 1, 1, 3);
                     return Sum(Square(Concat({right, left}, 1)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"sum_axis", [](const Tensor& x) {
                     return Sum(Square(SumAxis(x, 0)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"mean", [](const Tensor& x) { return Mean(Square(x)); },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"matmul_left", [](const Tensor& x) {
                     Tensor w = Tensor::FromVector({1, -1, 2, 0.5, 1, -2},
                                                   {3, 2});
                     return Sum(Square(MatMul(x, w)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"matmul_right", [](const Tensor& x) {
                     Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6},
                                                   {2, 3});
                     return Sum(Square(MatMul(a, Reshape(x, {3, 2}))));
                   },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"softmax", [](const Tensor& x) {
                     Tensor target = Tensor::FromVector(
                         {0.1, 0.2, 0.7, 0.3, 0.3, 0.4}, {2, 3});
                     return Sum(Square(Sub(Softmax(x), target)));
                   },
                   in6(-2, 2), Shape{2, 3}});
  cases.push_back({"conv1d_input", [](const Tensor& x) {
                     Tensor w = Tensor::FromVector(
                         {0.5, -0.25, 1.0, 0.75}, {1, 2, 2});
                     return Sum(Square(
                         Conv1d(Reshape(x, {1, 2, 3}), w, Tensor(), 1)));
                   },
                   in6(-2, 2), Shape{6}});
  cases.push_back({"conv1d_weight", [](const Tensor& x) {
                     Tensor input = Tensor::FromVector(
                         {1, 2, 3, 4, 5, 6, 7, 8}, {1, 2, 4});
                     Tensor b = Tensor::FromVector({0.5}, {1});
                     return Sum(Square(Conv1d(
                         input, Reshape(x, {1, 2, 3}), b, 1)));
                   },
                   in6(-1, 1), Shape{6}});
  cases.push_back({"mse", [](const Tensor& x) {
                     Tensor target =
                         Tensor::FromVector({1, 0, -1, 2, 0.5, -0.5}, Shape{6});
                     return MseLoss(x, target);
                   },
                   in6(-2, 2), Shape{6}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(GradCheckConvBias, BiasGradientIsOutputCount) {
  Tensor input = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 4});
  Tensor w = Tensor::FromVector({1.0, 1.0}, {1, 1, 2});
  Tensor b = Tensor::FromVector(std::vector<double>{0.0}, {1}, true);
  Tensor out = Conv1d(input, w, b, 1);
  Sum(out).Backward();
  EXPECT_DOUBLE_EQ(b.grad()[0], 3.0);  // three output positions
}

}  // namespace
}  // namespace mace::tensor
