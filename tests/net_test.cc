// In-process socket tests for the scale-out serving path (src/net/):
// the epoll ScoreServer front door over a real loopback TCP connection,
// the error-handling split (payload malformation answers and keeps the
// connection; frame malformation closes it), QoS rejection surfacing,
// and the Router fanning one client across two live backends — with
// bit-identical scores against the direct in-process ServeFrontend as
// the hard equivalence check.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/mace_detector.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/frontend.h"
#include "ts/generator.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::net {
namespace {

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  Rng rng(11);
  for (int s = 0; s < 2; ++s) {
    ts::NormalPattern pattern;
    pattern.kind =
        s == 0 ? ts::WaveformKind::kSinusoid : ts::WaveformKind::kSquare;
    pattern.period = 8.0 + 4.0 * s;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.7};
    pattern.feature_lags = {0.0, 2.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 160, 320, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

std::shared_ptr<const core::MaceDetector> FittedModel() {
  static const std::shared_ptr<const core::MaceDetector> model = [] {
    core::MaceConfig config;
    config.epochs = 1;
    auto detector = std::make_shared<core::MaceDetector>(config);
    MACE_CHECK_OK(detector->Fit(TinyWorkload()));
    return detector;
  }();
  return model;
}

std::unique_ptr<serve::ServeFrontend> MakeFrontend(size_t shards = 2) {
  serve::ServeConfig config;
  config.num_shards = shards;
  auto created = serve::ServeFrontend::Create(FittedModel(), config);
  MACE_CHECK_OK(created.status());
  return std::move(created).value();
}

std::unique_ptr<WireClient> Connect(uint16_t port) {
  auto client = WireClient::Connect("127.0.0.1", port);
  MACE_CHECK_OK(client.status());
  return std::move(client).value();
}

/// Streams observations through one tenant session over the wire and
/// concatenates every score batch the server returns.
std::vector<double> SocketScores(
    WireClient* client, const std::string& tenant, int32_t service,
    const std::vector<std::vector<double>>& observations) {
  std::vector<double> scores;
  for (const std::vector<double>& observation : observations) {
    wire::ScoreRequest request;
    request.tenant = tenant;
    request.service = service;
    request.values = observation;
    auto response = client->Score(request);
    MACE_CHECK_OK(response.status());
    MACE_CHECK(response->ok()) << response->message;
    scores.insert(scores.end(), response->scores.begin(),
                  response->scores.end());
  }
  return scores;
}

/// The same stream through the in-process frontend — the ground truth
/// the socket path must match bit for bit.
std::vector<double> DirectScores(
    serve::ServeFrontend* frontend, const std::string& tenant,
    int32_t service, const std::vector<std::vector<double>>& observations) {
  std::vector<double> scores;
  for (const std::vector<double>& observation : observations) {
    auto submitted = frontend->Submit(tenant, service, observation);
    MACE_CHECK_OK(submitted.status());
    serve::ScoreBatch batch = submitted->get();
    MACE_CHECK_OK(batch.status);
    scores.insert(scores.end(), batch.scores.begin(), batch.scores.end());
  }
  return scores;
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(ScoreServerTest, PingStatsAndCleanStop) {
  auto frontend = MakeFrontend();
  auto server = ScoreServer::Start(frontend.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_NE((*server)->port(), 0);

  auto client = Connect((*server)->port());
  MACE_CHECK_OK(client->Ping());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->empty());
  EXPECT_EQ((*server)->connections_opened(), 1u);
  EXPECT_GE((*server)->frames_received(), 2u);
}

TEST(ScoreServerTest, ScoresBitIdenticalToDirectFrontend) {
  auto frontend = MakeFrontend();
  auto server = ScoreServer::Start(frontend.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().message();
  auto client = Connect((*server)->port());

  const auto workload = TinyWorkload();
  for (int service = 0; service < 2; ++service) {
    const std::vector<std::vector<double>>& values =
        workload[service].test.values();
    const auto socket_scores =
        SocketScores(client.get(), "wire-tenant", service, values);
    const auto direct_scores =
        DirectScores(frontend.get(), "direct-tenant", service, values);
    EXPECT_FALSE(socket_scores.empty());
    EXPECT_TRUE(BitIdentical(socket_scores, direct_scores))
        << "service " << service << " diverged across the socket";
  }

  // Close returns the session tail; both paths must agree there too.
  auto closed = client->CloseSession("wire-tenant", 0);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->ok());
}

TEST(ScoreServerTest, MalformedPayloadAnswersAndKeepsConnection) {
  auto frontend = MakeFrontend();
  auto server = ScoreServer::Start(frontend.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().message();
  auto client = Connect((*server)->port());

  // A structurally valid frame whose ScoreRequest payload is garbage:
  // the server must answer with an error response, not drop the link.
  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe};
  auto fd = TcpConnect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> bytes;
  wire::AppendFrame(&bytes, wire::FrameType::kScoreRequest, 77, junk);
  MACE_CHECK_OK(SendAll(fd->get(), bytes.data(), bytes.size()));

  wire::FrameDecoder decoder;
  uint8_t buffer[512];
  wire::OwnedFrame frame;
  for (;;) {
    auto n = RecvSome(fd->get(), buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u) << "server closed instead of answering";
    decoder.Append(buffer, *n);
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next->has_value()) {
      frame = std::move(**next);
      break;
    }
  }
  EXPECT_EQ(frame.type, wire::FrameType::kScoreResponse);
  EXPECT_EQ(frame.request_id, 77u);
  auto response =
      wire::DecodeScoreResponse(frame.payload.data(), frame.payload.size());
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok()) << "garbage payload must not score";

  // The same connection still serves well-formed traffic.
  bytes.clear();
  wire::AppendFrame(&bytes, wire::FrameType::kPing, 78, nullptr, 0);
  MACE_CHECK_OK(SendAll(fd->get(), bytes.data(), bytes.size()));
  for (;;) {
    auto n = RecvSome(fd->get(), buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    decoder.Append(buffer, *n);
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next->has_value()) {
      EXPECT_EQ((*next)->type, wire::FrameType::kPong);
      break;
    }
  }
  (void)client;
}

TEST(ScoreServerTest, FrameErrorClosesConnection) {
  auto frontend = MakeFrontend();
  auto server = ScoreServer::Start(frontend.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().message();

  auto fd = TcpConnect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> bytes;
  wire::AppendFrame(&bytes, wire::FrameType::kPing, 1, nullptr, 0);
  bytes[0] = 'X';  // corrupt the magic: framing is unrecoverable
  MACE_CHECK_OK(SendAll(fd->get(), bytes.data(), bytes.size()));

  // The server must hang up; a blocking read drains to orderly EOF.
  uint8_t buffer[64];
  for (;;) {
    auto n = RecvSome(fd->get(), buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }
  EXPECT_GE((*server)->protocol_errors(), 1u);
}

TEST(ScoreServerTest, QosRefusalSetsRejectedFlagAndKeepsConnection) {
  auto frontend = MakeFrontend();
  ScoreServerOptions options;
  options.qos.rate_per_tenant = 0.001;  // effectively no refill in-test
  options.qos.burst = 2.0;
  options.qos.reserve_fraction = 0.0;
  auto server = ScoreServer::Start(frontend.get(), options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  auto client = Connect((*server)->port());

  wire::ScoreRequest request;
  request.tenant = "throttled";
  request.service = 0;
  request.values = TinyWorkload()[0].test.values()[0];
  for (int i = 0; i < 2; ++i) {
    auto response = client->Score(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok()) << "burst token " << i << " refused";
    EXPECT_FALSE(response->rejected);
  }
  auto refused = client->Score(request);
  ASSERT_TRUE(refused.ok()) << "QoS refusal must be a response, not a hangup";
  EXPECT_FALSE(refused->ok());
  EXPECT_TRUE(refused->rejected);
  EXPECT_GE((*server)->qos().rejected(serve::Priority::kNormal), 1u);
  MACE_CHECK_OK(client->Ping());
}

// -- router ----------------------------------------------------------------

struct TwoBackendTopology {
  std::unique_ptr<serve::ServeFrontend> frontend_a;
  std::unique_ptr<serve::ServeFrontend> frontend_b;
  std::unique_ptr<ScoreServer> backend_a;
  std::unique_ptr<ScoreServer> backend_b;
  std::unique_ptr<Router> router;

  TwoBackendTopology() {
    frontend_a = MakeFrontend(1);
    frontend_b = MakeFrontend(1);
    auto a = ScoreServer::Start(frontend_a.get(), {});
    auto b = ScoreServer::Start(frontend_b.get(), {});
    MACE_CHECK_OK(a.status());
    MACE_CHECK_OK(b.status());
    backend_a = std::move(*a);
    backend_b = std::move(*b);
    RouterOptions options;
    options.backends = {
        "127.0.0.1:" + std::to_string(backend_a->port()),
        "127.0.0.1:" + std::to_string(backend_b->port())};
    auto started = Router::Start(options);
    MACE_CHECK_OK(started.status());
    router = std::move(*started);
  }
};

TEST(RouterTest, BitIdenticalThroughRouterAndBothBackendsUsed) {
  TwoBackendTopology topology;
  auto client = Connect(topology.router->port());
  auto reference = MakeFrontend(1);

  const auto values = TinyWorkload()[0].test.values();
  const std::vector<std::vector<double>> steps(values.begin(),
                                               values.begin() + 48);
  for (int k = 0; k < 12; ++k) {
    const std::string tenant = "tenant-" + std::to_string(k);
    const auto routed = SocketScores(client.get(), tenant, 0, steps);
    const auto direct = DirectScores(reference.get(), tenant, 0, steps);
    EXPECT_FALSE(routed.empty());
    EXPECT_TRUE(BitIdentical(routed, direct))
        << tenant << " diverged through the router";
  }

  // The ring hash must actually spread these tenants: both backends see
  // traffic (the regression pin for the FNV clustering bug is in
  // wire_test; this is the end-to-end counterpart).
  EXPECT_GT(topology.backend_a->frames_received(), 0u);
  EXPECT_GT(topology.backend_b->frames_received(), 0u);
  EXPECT_EQ(topology.router->forwarded(),
            topology.backend_a->frames_received() +
                topology.backend_b->frames_received());
  EXPECT_EQ(topology.router->backend_errors(), 0u);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("router"), std::string::npos) << *stats;
}

TEST(RouterTest, PlacementIsStableAcrossBackendListOrder) {
  const std::vector<std::string> forward = {"10.0.0.1:7000", "10.0.0.2:7000",
                                            "10.0.0.3:7000"};
  const std::vector<std::string> shuffled = {"10.0.0.3:7000", "10.0.0.1:7000",
                                             "10.0.0.2:7000"};
  int moved = 0;
  for (int k = 0; k < 32; ++k) {
    const std::string tenant = "tenant-" + std::to_string(k);
    const size_t a = Router::RingPick(forward, 64, tenant);
    const size_t b = Router::RingPick(shuffled, 64, tenant);
    // Map indices back to addresses: placement must follow the address,
    // not the list position.
    if (forward[a] != shuffled[b]) ++moved;
  }
  EXPECT_EQ(moved, 0) << "ring placement depends on backend list order";
}

TEST(RouterTest, StartFailsWhenBackendUnreachable) {
  RouterOptions options;
  options.backends = {"127.0.0.1:1"};  // nothing listens on port 1
  auto started = Router::Start(options);
  EXPECT_FALSE(started.ok());
}

TEST(RouterTest, CloseSessionRoundTripsThroughRouter) {
  TwoBackendTopology topology;
  auto client = Connect(topology.router->port());
  const auto values = TinyWorkload()[0].test.values();
  const std::vector<std::vector<double>> steps(values.begin(),
                                               values.begin() + 32);
  (void)SocketScores(client.get(), "close-me", 0, steps);
  auto closed = client->CloseSession("close-me", 0);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->ok()) << closed->message;
}

}  // namespace
}  // namespace mace::net
