#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mace {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad window");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad window");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    MACE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    MACE_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacroUnwraps) {
  auto producer = []() -> Result<int> { return 7; };
  auto consumer = [&]() -> Result<int> {
    MACE_ASSIGN_OR_RETURN(const int v, producer());
    return v * 2;
  };
  EXPECT_EQ(consumer().value(), 14);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto producer = []() -> Result<int> {
    return Status::OutOfRange("idx");
  };
  auto consumer = [&]() -> Result<int> {
    MACE_ASSIGN_OR_RETURN(const int v, producer());
    return v * 2;
  };
  EXPECT_EQ(consumer().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace mace
