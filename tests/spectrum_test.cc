#include "fft/spectrum.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mace::fft {
namespace {

TEST(TopKTest, PicksLargest) {
  const std::vector<double> amps = {9.0, 1.0, 5.0, 7.0, 3.0};
  EXPECT_EQ(TopKIndices(amps, 2, /*skip_dc=*/false),
            (std::vector<int>{0, 3}));
}

TEST(TopKTest, SkipDcExcludesBinZero) {
  const std::vector<double> amps = {100.0, 1.0, 5.0, 7.0};
  EXPECT_EQ(TopKIndices(amps, 2, /*skip_dc=*/true),
            (std::vector<int>{3, 2}));
}

TEST(TopKTest, KLargerThanSizeReturnsAll) {
  const std::vector<double> amps = {1.0, 2.0};
  EXPECT_EQ(TopKIndices(amps, 10, false).size(), 2u);
}

TEST(TopKTest, StableTieBreakPrefersLowerIndex) {
  const std::vector<double> amps = {0.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(TopKIndices(amps, 2, true), (std::vector<int>{1, 2}));
}

TEST(NormalizeTest, SumsToOne) {
  const std::vector<double> q = NormalizeSpectrum({1.0, 3.0, 6.0});
  EXPECT_NEAR(q[0] + q[1] + q[2], 1.0, 1e-12);
  EXPECT_NEAR(q[2], 0.6, 1e-12);
}

TEST(NormalizeTest, AllZeroBecomesUniform) {
  const std::vector<double> q = NormalizeSpectrum({0.0, 0.0, 0.0, 0.0});
  for (double v : q) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SubsetKlTest, FullSubsetHasZeroError) {
  const std::vector<double> q = NormalizeSpectrum({1, 2, 3});
  EXPECT_NEAR(SubsetKlError(q, {0, 1, 2}), 0.0, 1e-12);
}

TEST(SubsetKlTest, MatchesClosedForm) {
  // KL(q_bar | q) = -log(sum of kept mass) — Eq. 11 of the paper.
  const std::vector<double> q = NormalizeSpectrum({1, 2, 3, 4});
  const double kept = q[2] + q[3];
  EXPECT_NEAR(SubsetKlError(q, {2, 3}), -std::log(kept), 1e-12);
}

TEST(SubsetKlTest, SmallerMassMeansLargerError) {
  const std::vector<double> q = NormalizeSpectrum({10, 5, 1, 1});
  EXPECT_LT(SubsetKlError(q, {0, 1}), SubsetKlError(q, {2, 3}));
}

TEST(MomentsTest, PooledMeanAndVariance) {
  const std::vector<std::vector<double>> spectra = {{1.0, 3.0}, {5.0, 7.0}};
  const AmplitudeMoments m = PooledAmplitudeMoments(spectra);
  EXPECT_DOUBLE_EQ(m.mean, 4.0);
  EXPECT_DOUBLE_EQ(m.variance, 5.0);
}

TEST(MomentsTest, EmptyInputIsZero) {
  const AmplitudeMoments m = PooledAmplitudeMoments({});
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
}

}  // namespace
}  // namespace mace::fft
