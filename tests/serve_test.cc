#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel_aware_detector.h"
#include "core/mace_detector.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "ts/generator.h"

namespace mace::serve {
namespace {

using core::MaceConfig;
using core::MaceDetector;
using core::StreamingScorer;

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(7 + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 160, 320, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

std::shared_ptr<const MaceDetector> FittedModel(uint64_t seed = 42) {
  MaceConfig config;
  config.epochs = 2;
  config.seed = seed;
  auto detector = std::make_shared<MaceDetector>(config);
  MACE_CHECK_OK(detector->Fit(TinyWorkload()));
  return detector;
}

/// Streams `series` through a fresh sequential StreamingScorer — the
/// ground truth the pool must reproduce bit-for-bit.
std::vector<double> SequentialScores(const core::ServingModel& detector,
                                     int service,
                                     const ts::TimeSeries& series) {
  auto scorer = StreamingScorer::Create(&detector, service);
  MACE_CHECK_OK(scorer.status());
  std::vector<double> scores;
  for (size_t t = 0; t < series.length(); ++t) {
    auto out = scorer->Push(series.values()[t]);
    MACE_CHECK_OK(out.status());
    scores.insert(scores.end(), out->begin(), out->end());
  }
  const auto tail = scorer->Finish();
  scores.insert(scores.end(), tail.begin(), tail.end());
  return scores;
}

TEST(ServeFrontendTest, CreateValidatesModelAndConfig) {
  EXPECT_FALSE(ServeFrontend::Create(nullptr).ok());
  EXPECT_FALSE(
      ServeFrontend::Create(std::make_shared<MaceDetector>()).ok());

  auto model = FittedModel();
  ServeConfig bad;
  bad.num_shards = 0;
  EXPECT_FALSE(ServeFrontend::Create(model, bad).ok());
  bad = ServeConfig();
  bad.queue_capacity = 0;
  EXPECT_FALSE(ServeFrontend::Create(model, bad).ok());
  bad = ServeConfig();
  bad.max_batch = 0;
  EXPECT_FALSE(ServeFrontend::Create(model, bad).ok());

  EXPECT_TRUE(ServeFrontend::Create(model).ok());
}

TEST(ServeFrontendTest, SubmitRejectsUnknownService) {
  auto frontend = ServeFrontend::Create(FittedModel());
  ASSERT_TRUE(frontend.ok());
  auto bad = (*frontend)->Submit("t", 9, {0.0, 0.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE((*frontend)->Submit("t", -1, {0.0, 0.0}).ok());
}

// The tentpole equivalence property: K tenants x M steps interleaved
// through the sharded pool produce, per tenant, exactly the sequential
// StreamingScorer output — bit-identical, because shard pinning keeps
// every session on one thread and in submission order.
TEST(ServeFrontendTest, MultiTenantMatchesSequentialExactly) {
  auto model = FittedModel();
  const auto services = TinyWorkload();

  ServeConfig config;
  config.num_shards = 3;
  config.max_batch = 7;  // force multiple micro-batches
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  constexpr int kTenants = 6;
  std::vector<std::vector<std::future<ScoreBatch>>> futures(kTenants);
  const size_t steps = services[0].test.length();
  // Interleave tenants step by step — the adversarial submission order.
  for (size_t t = 0; t < steps; ++t) {
    for (int k = 0; k < kTenants; ++k) {
      const int service = k % 2;
      auto f = (*frontend)->Submit("tenant-" + std::to_string(k), service,
                                   services[service].test.values()[t]);
      ASSERT_TRUE(f.ok());
      futures[k].push_back(std::move(*f));
    }
  }

  for (int k = 0; k < kTenants; ++k) {
    const int service = k % 2;
    std::vector<double> pooled;
    for (auto& f : futures[k]) {
      ScoreBatch batch = f.get();
      ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
      EXPECT_FALSE(batch.dropped);
      if (!batch.scores.empty()) {
        EXPECT_EQ(batch.first_step, pooled.size());
      }
      pooled.insert(pooled.end(), batch.scores.begin(),
                    batch.scores.end());
    }
    auto tail = (*frontend)->Close("tenant-" + std::to_string(k), service);
    ASSERT_TRUE(tail.ok());
    pooled.insert(pooled.end(), tail->begin(), tail->end());

    const std::vector<double> sequential =
        SequentialScores(*model, service, services[service].test);
    ASSERT_EQ(pooled.size(), sequential.size()) << "tenant " << k;
    for (size_t t = 0; t < pooled.size(); ++t) {
      EXPECT_EQ(pooled[t], sequential[t])
          << "tenant " << k << " step " << t;
    }
  }

  const ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.shed, 0u);
  EXPECT_EQ(totals.submitted, steps * kTenants);
  EXPECT_EQ(totals.scored_steps, steps * kTenants);
}

// A single tenant bursting its whole series into one shard makes the
// drain batches runs of same-session score items, which the worker
// routes through StreamingScorer::PushMany (ProcessScoreGroup). The
// emitted scores and first_step continuity must be indistinguishable
// from one-at-a-time processing.
TEST(ServeFrontendTest, SameSessionBurstMatchesSequentialExactly) {
  auto model = FittedModel();
  const auto services = TinyWorkload();

  ServeConfig config;
  config.num_shards = 1;
  config.max_batch = 16;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  const ts::TimeSeries& test = services[0].test;
  std::vector<std::future<ScoreBatch>> futures;
  for (size_t t = 0; t < test.length(); ++t) {
    auto f = (*frontend)->Submit("burst", 0, test.values()[t]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }

  std::vector<double> pooled;
  for (auto& f : futures) {
    ScoreBatch batch = f.get();
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    EXPECT_FALSE(batch.dropped);
    if (!batch.scores.empty()) {
      EXPECT_EQ(batch.first_step, pooled.size())
          << "batched scoring broke first_step continuity";
    }
    pooled.insert(pooled.end(), batch.scores.begin(), batch.scores.end());
  }
  auto tail = (*frontend)->Close("burst", 0);
  ASSERT_TRUE(tail.ok());
  pooled.insert(pooled.end(), tail->begin(), tail->end());

  const std::vector<double> sequential =
      SequentialScores(*model, 0, test);
  ASSERT_EQ(pooled.size(), sequential.size());
  for (size_t t = 0; t < pooled.size(); ++t) {
    EXPECT_EQ(pooled[t], sequential[t]) << "step " << t;
  }
  EXPECT_EQ((*frontend)->Stats().Totals().scored_steps, test.length());
}

TEST(ServeFrontendTest, SynchronousPathMatchesSequential) {
  auto model = FittedModel();
  const auto services = TinyWorkload();
  auto frontend = ServeFrontend::Create(model);
  ASSERT_TRUE(frontend.ok());

  std::vector<double> pooled;
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    auto batch = (*frontend)->Score("sync", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok());
    pooled.insert(pooled.end(), batch->scores.begin(),
                  batch->scores.end());
  }
  auto tail = (*frontend)->Close("sync", 0);
  ASSERT_TRUE(tail.ok());
  pooled.insert(pooled.end(), tail->begin(), tail->end());

  const std::vector<double> sequential =
      SequentialScores(*model, 0, services[0].test);
  ASSERT_EQ(pooled.size(), sequential.size());
  for (size_t t = 0; t < pooled.size(); ++t) {
    EXPECT_EQ(pooled[t], sequential[t]) << "step " << t;
  }
}

TEST(ServeFrontendTest, ScoringErrorsSurfaceInBatchStatus) {
  auto frontend = ServeFrontend::Create(FittedModel());
  ASSERT_TRUE(frontend.ok());
  auto batch = (*frontend)->Score("bad", 0, {1.0, 2.0, 3.0});  // 3 != 2
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->status.ok());
  EXPECT_FALSE(batch->dropped);
}

// Overload policies are exercised deterministically: a gate parks the
// single shard's worker, the test fills the queue past capacity, then the
// gate opens.
TEST(ServeFrontendTest, ShedPolicyDropsNewestWithExactAccounting) {
  auto model = FittedModel();
  ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 8;
  config.overload_policy = OverloadPolicy::kShed;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  std::promise<void> gate;
  (*frontend)->pool_for_test().BlockShardUntilForTest(
      0, std::shared_future<void>(gate.get_future()));

  constexpr size_t kExtra = 5;
  const auto services = TinyWorkload();
  std::vector<std::future<ScoreBatch>> futures;
  for (size_t i = 0; i < config.queue_capacity + kExtra; ++i) {
    auto f = (*frontend)->Submit("tenant", 0,
                                 services[0].test.values()[i]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  gate.set_value();
  (*frontend)->Flush();

  // Exactly the last kExtra futures were shed, in order.
  size_t dropped = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const ScoreBatch batch = futures[i].get();
    if (batch.dropped) {
      ++dropped;
      EXPECT_GE(i, config.queue_capacity) << "shed an accepted item";
    }
  }
  EXPECT_EQ(dropped, kExtra);
  const ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.shed, kExtra);
  EXPECT_EQ(totals.submitted, config.queue_capacity);
  EXPECT_EQ(totals.scored_steps, config.queue_capacity);
}

TEST(ServeFrontendTest, LatestOnlyPolicyDropsOldestWithExactAccounting) {
  auto model = FittedModel();
  ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 8;
  config.overload_policy = OverloadPolicy::kLatestOnly;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  std::promise<void> gate;
  (*frontend)->pool_for_test().BlockShardUntilForTest(
      0, std::shared_future<void>(gate.get_future()));

  constexpr size_t kExtra = 5;
  const auto services = TinyWorkload();
  std::vector<std::future<ScoreBatch>> futures;
  for (size_t i = 0; i < config.queue_capacity + kExtra; ++i) {
    auto f = (*frontend)->Submit("tenant", 0,
                                 services[0].test.values()[i]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  gate.set_value();
  (*frontend)->Flush();

  // Newest wins: exactly the first kExtra futures were dropped.
  for (size_t i = 0; i < futures.size(); ++i) {
    const ScoreBatch batch = futures[i].get();
    EXPECT_EQ(batch.dropped, i < kExtra) << "index " << i;
  }
  const ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.shed, kExtra);
  EXPECT_EQ(totals.scored_steps, config.queue_capacity);
}

TEST(ServeFrontendTest, BlockPolicyLosesNothing) {
  auto model = FittedModel();
  ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 4;  // far smaller than the submission count
  config.overload_policy = OverloadPolicy::kBlock;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  std::promise<void> gate;
  (*frontend)->pool_for_test().BlockShardUntilForTest(
      0, std::shared_future<void>(gate.get_future()));

  const auto services = TinyWorkload();
  const size_t steps = services[0].test.length();
  // The producer must block on the full queue, so run it on its own
  // thread and release the gate once it is saturated.
  std::thread producer([&] {
    for (size_t t = 0; t < steps; ++t) {
      auto f = (*frontend)->Submit("tenant", 0,
                                   services[0].test.values()[t]);
      MACE_CHECK_OK(f.status());
    }
  });
  while ((*frontend)->Stats().Totals().queue_depth <
         config.queue_capacity) {
    std::this_thread::yield();
  }
  gate.set_value();
  producer.join();
  (*frontend)->Flush();

  const ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.shed, 0u);
  EXPECT_EQ(totals.submitted, steps);
  EXPECT_EQ(totals.scored_steps, steps);
}

// Hot reload: sessions opened before the swap drain on the old model with
// no lost or double-scored steps; sessions opened after run on the new
// one; the old model is released once its sessions close.
TEST(ServeFrontendTest, HotReloadLosesNoStepsAndFreesOldModel) {
  auto model_a = FittedModel(/*seed=*/42);
  std::weak_ptr<const MaceDetector> weak_a = model_a;
  const auto services = TinyWorkload();
  const std::vector<double> sequential =
      SequentialScores(*model_a, 0, services[0].test);

  ServeConfig config;
  config.num_shards = 2;
  auto frontend = ServeFrontend::Create(model_a, config);
  ASSERT_TRUE(frontend.ok());
  EXPECT_EQ((*frontend)->model_generation(), 1u);

  const size_t steps = services[0].test.length();
  const size_t half = steps / 2;
  std::vector<std::future<ScoreBatch>> futures;
  for (size_t t = 0; t < half; ++t) {
    auto f = (*frontend)->Submit("old-tenant", 0,
                                 services[0].test.values()[t]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }

  // Swap to a differently-seeded (different-weights) model mid-stream.
  auto model_b = FittedModel(/*seed=*/43);
  ASSERT_TRUE((*frontend)->Swap(model_b).ok());
  EXPECT_EQ((*frontend)->model_generation(), 2u);

  for (size_t t = half; t < steps; ++t) {
    auto f = (*frontend)->Submit("old-tenant", 0,
                                 services[0].test.values()[t]);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }

  // The pre-swap session drains on model A: every step scored exactly
  // once, bit-identical to an uninterrupted sequential stream on A.
  std::vector<double> pooled;
  for (auto& f : futures) {
    ScoreBatch batch = f.get();
    ASSERT_TRUE(batch.status.ok());
    EXPECT_FALSE(batch.dropped);
    pooled.insert(pooled.end(), batch.scores.begin(), batch.scores.end());
  }
  auto tail = (*frontend)->Close("old-tenant", 0);
  ASSERT_TRUE(tail.ok());
  pooled.insert(pooled.end(), tail->begin(), tail->end());
  ASSERT_EQ(pooled.size(), sequential.size());
  for (size_t t = 0; t < pooled.size(); ++t) {
    EXPECT_EQ(pooled[t], sequential[t]) << "step " << t;
  }

  // A session opened after the swap scores on model B.
  std::vector<double> fresh;
  for (size_t t = 0; t < steps; ++t) {
    auto batch = (*frontend)->Score("new-tenant", 0,
                                    services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    fresh.insert(fresh.end(), batch->scores.begin(), batch->scores.end());
  }
  auto fresh_tail = (*frontend)->Close("new-tenant", 0);
  ASSERT_TRUE(fresh_tail.ok());
  fresh.insert(fresh.end(), fresh_tail->begin(), fresh_tail->end());
  const std::vector<double> sequential_b =
      SequentialScores(*model_b, 0, services[0].test);
  ASSERT_EQ(fresh.size(), sequential_b.size());
  for (size_t t = 0; t < fresh.size(); ++t) {
    EXPECT_EQ(fresh[t], sequential_b[t]) << "step " << t;
  }

  // With its last session closed (and the free pool pruned to the new
  // generation), nothing in the pool still references model A.
  (*frontend)->Flush();
  model_a.reset();
  EXPECT_TRUE(weak_a.expired());
}

TEST(ServeFrontendTest, ReloadFromDiskAndErrorPathLeaveModelLive) {
  auto model = FittedModel();
  auto frontend = ServeFrontend::Create(model);
  ASSERT_TRUE(frontend.ok());

  // A failed reload names the path and leaves generation untouched.
  Status bad = (*frontend)->Reload("/no/such/model.mace");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("/no/such/model.mace"), std::string::npos);
  EXPECT_EQ((*frontend)->model_generation(), 1u);

  const std::string path = ::testing::TempDir() + "/served.mace";
  ASSERT_TRUE(model->Save(path).ok());
  ASSERT_TRUE((*frontend)->Reload(path).ok());
  EXPECT_EQ((*frontend)->model_generation(), 2u);

  // The reloaded model serves new sessions.
  const auto services = TinyWorkload();
  auto batch = (*frontend)->Score("t", 0, services[0].test.values()[0]);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->status.ok());
  std::remove(path.c_str());
}

TEST(ServeFrontendTest, TtlEvictsIdleSessionsAndRecyclesScorers) {
  auto model = FittedModel();
  ServeConfig config;
  config.num_shards = 1;
  config.session_ttl_ms = 20;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  const auto services = TinyWorkload();
  for (int k = 0; k < 4; ++k) {
    auto batch = (*frontend)->Score("tenant-" + std::to_string(k), 0,
                                    services[0].test.values()[0]);
    ASSERT_TRUE(batch.ok());
  }
  EXPECT_EQ((*frontend)->Stats().Totals().sessions_active, 4u);

  // Idle past the TTL: the worker's sweep evicts all four.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*frontend)->Stats().Totals().sessions_active > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "TTL eviction never happened";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*frontend)->Stats().Totals().sessions_evicted, 4u);

  // Eviction pools the scorers via StreamingScorer::Reset, which must
  // also zero the throughput gauge — a recycled session must not start
  // life reporting the previous tenant's scores-per-second.
  EXPECT_EQ(obs::Metrics()
                .GetGauge("mace_stream_scores_per_second", "",
                          {{"service", "0"}})
                ->Value(),
            0.0);

  // A returning tenant gets a fresh stream (recycled scorer, step 0).
  size_t emitted = 0;
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    auto batch = (*frontend)->Score("tenant-0", 0,
                                    services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok());
    if (emitted == 0 && !batch->scores.empty()) {
      EXPECT_EQ(batch->first_step, 0u) << "recycled scorer kept state";
    }
    emitted += batch->scores.size();
  }
  EXPECT_GT(emitted, 0u);
}

// Cross-variant recycle regression: eviction pools scorers keyed by
// (model pointer, service). A scorer pooled while the frontend served
// MACE must NOT be handed to a session opening after a swap to the
// channel-aware variant — a recycled scorer is bound to the model it was
// created on, so reusing it across variants would score the returning
// tenant on the retired model.
TEST(ServeFrontendTest, EvictedScorersAreNotRecycledAcrossVariants) {
  auto mace_model = FittedModel();
  const auto services = TinyWorkload();
  channel::ChannelAwareConfig channel_config;
  auto channel_model =
      std::make_shared<channel::ChannelAwareDetector>(channel_config);
  MACE_CHECK_OK(channel_model->Fit(services));

  ServeConfig config;
  config.num_shards = 1;
  config.session_ttl_ms = 20;
  auto frontend = ServeFrontend::Create(mace_model, config);
  ASSERT_TRUE(frontend.ok());

  // Open a session on the MACE model and let the TTL sweep pool it.
  for (size_t t = 0; t < 8; ++t) {
    auto batch =
        (*frontend)->Score("tenant-0", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*frontend)->Stats().Totals().sessions_active > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "TTL eviction never happened";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ASSERT_TRUE((*frontend)->Swap(channel_model).ok());

  // The returning tenant's new session must score on the channel-aware
  // model, bit-identically to a sequential scorer on it — and from step
  // 0 (no state leaked from the pooled MACE-era scorer).
  const std::vector<double> expected =
      SequentialScores(*channel_model, 0, services[0].test);
  std::vector<double> served;
  bool saw_first = false;
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    auto batch =
        (*frontend)->Score("tenant-0", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok()) << batch->status.message();
    if (!saw_first && !batch->scores.empty()) {
      EXPECT_EQ(batch->first_step, 0u) << "recycled scorer kept state";
      saw_first = true;
    }
    served.insert(served.end(), batch->scores.begin(),
                  batch->scores.end());
  }
  auto tail = (*frontend)->Close("tenant-0", 0);
  ASSERT_TRUE(tail.ok());
  served.insert(served.end(), tail->begin(), tail->end());
  ASSERT_EQ(served.size(), expected.size());
  for (size_t t = 0; t < served.size(); ++t) {
    ASSERT_EQ(served[t], expected[t]) << "step " << t;
  }
}

// Reject-replay accounting: when a drained same-session group holds a
// non-finite observation under policy 'reject', PushMany fails without
// consuming anything and ProcessScoreGroup replays the group one Push at
// a time. Each observation must then be counted EXACTLY once —
// scored_steps one per item (no pre-count before the failed PushMany,
// no double count on replay), the ingest-dropped counter one per
// rejected observation — and the per-item outcomes must match the
// unbatched path: the poisoned item alone fails, every other item keeps
// its scores and step continuity.
TEST(ServeFrontendTest, RejectReplayCountsEachObservationOnce) {
  auto model = FittedModel();
  const auto services = TinyWorkload();

  ServeConfig config;
  config.num_shards = 1;
  config.max_batch = 16;
  config.non_finite_policy = ts::NonFinitePolicy::kReject;
  auto frontend = ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  obs::Counter* dropped = obs::Metrics().GetCounter(
      "mace_ingest_dropped_total", "", {{"shard", "0"}});
  const uint64_t dropped_before = dropped->Value();

  // Gate the shard so the whole burst drains as one ProcessScoreGroup
  // group; poison one mid-group observation.
  std::promise<void> gate;
  (*frontend)->pool_for_test().BlockShardUntilForTest(
      0, std::shared_future<void>(gate.get_future()));
  constexpr size_t kGroup = 12;
  constexpr size_t kPoison = 7;
  std::vector<std::future<ScoreBatch>> futures;
  for (size_t t = 0; t < kGroup; ++t) {
    std::vector<double> observation = services[0].test.values()[t];
    if (t == kPoison) observation[1] = std::nan("");
    auto f = (*frontend)->Submit("replay-tenant", 0, observation);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  gate.set_value();
  (*frontend)->Flush();

  std::vector<double> pooled;
  for (size_t t = 0; t < kGroup; ++t) {
    ScoreBatch batch = futures[t].get();
    if (t == kPoison) {
      EXPECT_FALSE(batch.status.ok()) << "poisoned item scored";
      EXPECT_EQ(batch.status.code(), StatusCode::kInvalidArgument);
      continue;
    }
    ASSERT_TRUE(batch.status.ok())
        << "item " << t << ": " << batch.status.ToString();
    EXPECT_FALSE(batch.contaminated);
    pooled.insert(pooled.end(), batch.scores.begin(), batch.scores.end());
  }
  auto tail = (*frontend)->Close("replay-tenant", 0);
  ASSERT_TRUE(tail.ok());
  pooled.insert(pooled.end(), tail->begin(), tail->end());

  // Exact counter accounting: every observation consumed by the scorer
  // exactly once, one rejected ingest, emitted == finalized scores.
  const ShardStats totals = (*frontend)->Stats().Totals();
  EXPECT_EQ(totals.submitted, kGroup);
  EXPECT_EQ(totals.scored_steps, kGroup);
  EXPECT_EQ(dropped->Value() - dropped_before, 1u);
  // Close's tail emission is already in the totals (Stats read after
  // Close), so emitted covers everything pooled.
  EXPECT_EQ(totals.emitted, pooled.size());

  // Outcome parity with the unbatched path: a sequential scorer fed the
  // same stream (skipping the rejected Push, exactly as replay does)
  // finalizes the same scores bit for bit.
  auto scorer = StreamingScorer::Create(model.get(), 0,
                                        ts::NonFinitePolicy::kReject);
  ASSERT_TRUE(scorer.ok());
  std::vector<double> sequential;
  for (size_t t = 0; t < kGroup; ++t) {
    std::vector<double> observation = services[0].test.values()[t];
    if (t == kPoison) observation[1] = std::nan("");
    auto out = scorer->Push(observation);
    if (t == kPoison) {
      EXPECT_FALSE(out.ok());
      continue;
    }
    ASSERT_TRUE(out.ok());
    sequential.insert(sequential.end(), out->begin(), out->end());
  }
  const auto seq_tail = scorer->Finish();
  sequential.insert(sequential.end(), seq_tail.begin(), seq_tail.end());
  ASSERT_EQ(pooled.size(), sequential.size());
  for (size_t t = 0; t < pooled.size(); ++t) {
    EXPECT_EQ(pooled[t], sequential[t]) << "step " << t;
  }
}

}  // namespace
}  // namespace mace::serve
