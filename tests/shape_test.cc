#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace mace::tensor {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({4}), 4);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0}), 0);
}

TEST(ShapeTest, RowMajorStrides) {
  EXPECT_EQ(RowMajorStrides({2, 3, 4}), (std::vector<Index>{12, 4, 1}));
  EXPECT_EQ(RowMajorStrides({7}), (std::vector<Index>{1}));
  EXPECT_TRUE(RowMajorStrides({}).empty());
}

TEST(ShapeTest, ShapeToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(BroadcastTest, EqualShapes) {
  Shape out;
  ASSERT_TRUE(BroadcastShapes({2, 3}, {2, 3}, &out));
  EXPECT_EQ(out, (Shape{2, 3}));
}

TEST(BroadcastTest, ScalarBroadcastsToAnything) {
  Shape out;
  ASSERT_TRUE(BroadcastShapes({}, {4, 5}, &out));
  EXPECT_EQ(out, (Shape{4, 5}));
}

TEST(BroadcastTest, OnesExpand) {
  Shape out;
  ASSERT_TRUE(BroadcastShapes({1, 3}, {2, 1}, &out));
  EXPECT_EQ(out, (Shape{2, 3}));
}

TEST(BroadcastTest, MissingLeadingDims) {
  Shape out;
  ASSERT_TRUE(BroadcastShapes({3}, {2, 3}, &out));
  EXPECT_EQ(out, (Shape{2, 3}));
}

TEST(BroadcastTest, IncompatibleFails) {
  Shape out;
  EXPECT_FALSE(BroadcastShapes({2, 3}, {2, 4}, &out));
}

TEST(BroadcastTest, MakeBroadcastStridesZeroesBroadcastDims) {
  const Shape operand{1, 3};
  const Shape out{2, 3};
  EXPECT_EQ(MakeBroadcastStrides(operand, out),
            (std::vector<Index>{0, 1}));
  EXPECT_EQ(MakeBroadcastStrides({3}, out), (std::vector<Index>{0, 1}));
}

TEST(BroadcastTest, OffsetMapsCorrectly) {
  // Operand [1, 3] broadcast over output [2, 3]: rows share the operand.
  const Shape out{2, 3};
  const auto out_strides = RowMajorStrides(out);
  const auto op_strides = MakeBroadcastStrides({1, 3}, out);
  EXPECT_EQ(BroadcastOffset(0, out_strides, op_strides, out), 0);
  EXPECT_EQ(BroadcastOffset(2, out_strides, op_strides, out), 2);
  EXPECT_EQ(BroadcastOffset(3, out_strides, op_strides, out), 0);
  EXPECT_EQ(BroadcastOffset(5, out_strides, op_strides, out), 2);
}

}  // namespace
}  // namespace mace::tensor
