#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "eval/metrics.h"
#include "ts/generator.h"

namespace mace::baselines {
namespace {

std::vector<ts::ServiceData> TinyWorkload(uint64_t seed = 1) {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(seed + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.amplitude = 1.0;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 400, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 240, 400, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    inject.min_segment = 6;
    inject.max_segment = 16;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

TrainOptions FastOptions() {
  TrainOptions options;
  options.epochs = 3;
  return options;
}

TEST(RegistryTest, KnownNamesConstruct) {
  for (const std::string& name : AllBaselineNames()) {
    auto detector = MakeDetector(name, FastOptions());
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_FALSE((*detector)->name().empty());
  }
  EXPECT_TRUE(MakeDetector("MACE", FastOptions()).ok());
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakeDetector("DoesNotExist", FastOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, ChannelAwareVariantConstructs) {
  // Not a paper baseline (absent from AllBaselineNames) but reachable
  // through the registry for benches and serving.
  auto detector = MakeDetector("ChannelAware", FastOptions());
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ((*detector)->name(), "ChannelAware");
}

TEST(RegistryTest, NeuralNamesExcludeSignal) {
  const auto neural = NeuralBaselineNames();
  for (const std::string& name : neural) {
    EXPECT_NE(name, "Signal-PCA");
  }
  EXPECT_EQ(AllBaselineNames().size(), neural.size() + 1);
}

class BaselineDetectorTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineDetectorTest, FitScoreAndDetect) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  for (size_t s = 0; s < services.size(); ++s) {
    auto scores = (*detector)->Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(scores.ok());
    ASSERT_EQ(scores->size(), services[s].test.length());
    for (double v : *scores) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
    auto best = eval::BestF1Threshold(*scores, services[s].test.labels());
    ASSERT_TRUE(best.ok());
    EXPECT_GT(best->metrics.f1, 0.4) << GetParam() << " on service " << s;
  }
}

TEST_P(BaselineDetectorTest, ScoreBeforeFitFails) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  const auto services = TinyWorkload();
  EXPECT_FALSE((*detector)->Score(0, services[0].test).ok());
}

TEST_P(BaselineDetectorTest, ScoreUnseenHandlesNewService) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload(1)).ok());
  const auto other = TinyWorkload(123);
  auto scores = (*detector)->ScoreUnseen(other[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), other[0].test.length());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineDetectorTest,
                         ::testing::ValuesIn(AllBaselineNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Regression: every baseline's ScoreUnseen used to accept malformed
// splits — Signal-PCA even scored before Fit and silently rewrote its
// fitted feature width. All of it must fail descriptively now.
TEST_P(BaselineDetectorTest, ScoreUnseenValidatesSplits) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  const auto services = TinyWorkload();
  EXPECT_EQ((*detector)->ScoreUnseen(services[0]).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE((*detector)->Fit(services).ok());

  Rng rng(5);
  ts::NormalPattern narrow;
  narrow.feature_weights = {1.0};
  narrow.feature_lags = {0.0};
  ts::ServiceData single;
  single.train = ts::GenerateNormal(narrow, 200, 0, &rng);
  single.test = ts::GenerateNormal(narrow, 100, 200, &rng);
  auto mismatch = (*detector)->ScoreUnseen(single);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("1 feature"),
            std::string::npos)
      << mismatch.status().message();

  ts::ServiceData short_train;
  short_train.train = services[0].train.Slice(0, 4);
  short_train.test = services[0].test;
  auto too_short = (*detector)->ScoreUnseen(short_train);
  ASSERT_FALSE(too_short.ok());
  EXPECT_NE(too_short.status().message().find("4 steps"),
            std::string::npos)
      << too_short.status().message();
  ts::ServiceData short_test;
  short_test.train = services[0].train;
  short_test.test = services[0].test.Slice(0, 3);
  EXPECT_FALSE((*detector)->ScoreUnseen(short_test).ok());
}

// Regression: Signal-PCA's ScoreUnseen mutated num_features_ before
// validating, so one malformed call corrupted the fitted model — every
// later Score on original-width data then failed. A failed ScoreUnseen
// must leave the model bit-identical.
TEST(SignalReconstructorTest, FailedScoreUnseenLeavesModelIntact) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  auto before = (*detector)->Score(0, services[0].test);
  ASSERT_TRUE(before.ok());

  Rng rng(7);
  ts::NormalPattern narrow;
  narrow.feature_weights = {1.0};
  narrow.feature_lags = {0.0};
  ts::ServiceData single;
  single.train = ts::GenerateNormal(narrow, 200, 0, &rng);
  single.test = ts::GenerateNormal(narrow, 100, 200, &rng);
  ASSERT_FALSE((*detector)->ScoreUnseen(single).ok());

  auto after = (*detector)->Score(0, services[0].test);
  ASSERT_TRUE(after.ok()) << after.status().message();
  ASSERT_EQ(after->size(), before->size());
  for (size_t t = 0; t < after->size(); ++t) {
    ASSERT_EQ((*after)[t], (*before)[t]) << "step " << t;
  }
}

// Regression: Signal-PCA's Score accepted a test series shorter than the
// window (zero windows cut, garbage finalization) or of the wrong width.
TEST(SignalReconstructorTest, ScoreValidatesTestSeries) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  auto short_series = (*detector)->Score(0, services[0].test.Slice(0, 3));
  ASSERT_FALSE(short_series.ok());
  EXPECT_NE(short_series.status().message().find("shorter than"),
            std::string::npos)
      << short_series.status().message();
  Rng rng(9);
  ts::NormalPattern narrow;
  narrow.feature_weights = {1.0};
  narrow.feature_lags = {0.0};
  const ts::TimeSeries wrong_width = ts::GenerateNormal(narrow, 100, 0, &rng);
  EXPECT_FALSE((*detector)->Score(0, wrong_width).ok());
}

TEST(ReconstructionDetectorTest, EpochLossesDecreaseForDenseAe) {
  auto detector = MakeDetector("DenseAE", FastOptions());
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload()).ok());
  auto* recon = dynamic_cast<ReconstructionDetector*>(detector->get());
  ASSERT_NE(recon, nullptr);
  const auto& losses = recon->epoch_losses();
  ASSERT_FALSE(losses.empty());
  EXPECT_LT(losses.back(), losses.front());
}

TEST(ReconstructionDetectorTest, ParameterCountsDifferAcrossFamilies) {
  const auto services = TinyWorkload();
  std::vector<int64_t> counts;
  for (const std::string& name : NeuralBaselineNames()) {
    auto detector = MakeDetector(name, FastOptions());
    ASSERT_TRUE((*detector)->Fit(services).ok());
    counts.push_back((*detector)->ParameterCount());
    EXPECT_GT(counts.back(), 0) << name;
  }
}

TEST(SignalReconstructorTest, NonParametric) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload()).ok());
  EXPECT_EQ((*detector)->ParameterCount(), 0);
}

TEST(SignalReconstructorTest, CleanSubspaceGivesLowNormalResidual) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  auto scores = (*detector)->Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  double normal = 0.0, anomalous = 0.0;
  int nc = 0, ac = 0;
  for (size_t t = 0; t < scores->size(); ++t) {
    if (services[0].test.is_anomaly(t)) {
      anomalous += (*scores)[t];
      ++ac;
    } else {
      normal += (*scores)[t];
      ++nc;
    }
  }
  EXPECT_GT(anomalous / ac, normal / nc);
}

}  // namespace
}  // namespace mace::baselines
