#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "eval/metrics.h"
#include "ts/generator.h"

namespace mace::baselines {
namespace {

std::vector<ts::ServiceData> TinyWorkload(uint64_t seed = 1) {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(seed + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.amplitude = 1.0;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 400, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 240, 400, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    inject.min_segment = 6;
    inject.max_segment = 16;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

TrainOptions FastOptions() {
  TrainOptions options;
  options.epochs = 3;
  return options;
}

TEST(RegistryTest, KnownNamesConstruct) {
  for (const std::string& name : AllBaselineNames()) {
    auto detector = MakeDetector(name, FastOptions());
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_FALSE((*detector)->name().empty());
  }
  EXPECT_TRUE(MakeDetector("MACE", FastOptions()).ok());
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakeDetector("DoesNotExist", FastOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NeuralNamesExcludeSignal) {
  const auto neural = NeuralBaselineNames();
  for (const std::string& name : neural) {
    EXPECT_NE(name, "Signal-PCA");
  }
  EXPECT_EQ(AllBaselineNames().size(), neural.size() + 1);
}

class BaselineDetectorTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineDetectorTest, FitScoreAndDetect) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  for (size_t s = 0; s < services.size(); ++s) {
    auto scores = (*detector)->Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(scores.ok());
    ASSERT_EQ(scores->size(), services[s].test.length());
    for (double v : *scores) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
    auto best = eval::BestF1Threshold(*scores, services[s].test.labels());
    ASSERT_TRUE(best.ok());
    EXPECT_GT(best->metrics.f1, 0.4) << GetParam() << " on service " << s;
  }
}

TEST_P(BaselineDetectorTest, ScoreBeforeFitFails) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  const auto services = TinyWorkload();
  EXPECT_FALSE((*detector)->Score(0, services[0].test).ok());
}

TEST_P(BaselineDetectorTest, ScoreUnseenHandlesNewService) {
  auto detector = MakeDetector(GetParam(), FastOptions());
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload(1)).ok());
  const auto other = TinyWorkload(123);
  auto scores = (*detector)->ScoreUnseen(other[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), other[0].test.length());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineDetectorTest,
                         ::testing::ValuesIn(AllBaselineNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ReconstructionDetectorTest, EpochLossesDecreaseForDenseAe) {
  auto detector = MakeDetector("DenseAE", FastOptions());
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload()).ok());
  auto* recon = dynamic_cast<ReconstructionDetector*>(detector->get());
  ASSERT_NE(recon, nullptr);
  const auto& losses = recon->epoch_losses();
  ASSERT_FALSE(losses.empty());
  EXPECT_LT(losses.back(), losses.front());
}

TEST(ReconstructionDetectorTest, ParameterCountsDifferAcrossFamilies) {
  const auto services = TinyWorkload();
  std::vector<int64_t> counts;
  for (const std::string& name : NeuralBaselineNames()) {
    auto detector = MakeDetector(name, FastOptions());
    ASSERT_TRUE((*detector)->Fit(services).ok());
    counts.push_back((*detector)->ParameterCount());
    EXPECT_GT(counts.back(), 0) << name;
  }
}

TEST(SignalReconstructorTest, NonParametric) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  ASSERT_TRUE((*detector)->Fit(TinyWorkload()).ok());
  EXPECT_EQ((*detector)->ParameterCount(), 0);
}

TEST(SignalReconstructorTest, CleanSubspaceGivesLowNormalResidual) {
  auto detector = MakeDetector("Signal-PCA", FastOptions());
  const auto services = TinyWorkload();
  ASSERT_TRUE((*detector)->Fit(services).ok());
  auto scores = (*detector)->Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  double normal = 0.0, anomalous = 0.0;
  int nc = 0, ac = 0;
  for (size_t t = 0; t < scores->size(); ++t) {
    if (services[0].test.is_anomaly(t)) {
      anomalous += (*scores)[t];
      ++ac;
    } else {
      normal += (*scores)[t];
      ++nc;
    }
  }
  EXPECT_GT(anomalous / ac, normal / nc);
}

}  // namespace
}  // namespace mace::baselines
