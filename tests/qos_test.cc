// QoS admission and priority-class semantics (serve/qos.h + the
// priority-aware shed paths of the sharded pool): exact token-bucket
// accounting under burst on an explicit clock, the per-class reserve
// ordering (low refused first, high last), the overflow-bucket tenant
// cap, and — at the pool level — the "high is never shed while a lower
// class is queued" contract under both kShed and kLatestOnly.

#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mace_detector.h"
#include "serve/frontend.h"
#include "serve/qos.h"
#include "ts/generator.h"

namespace mace::serve {
namespace {

TEST(TokenBucketTest, ExactAccountingUnderBurst) {
  TokenBucket bucket(10.0, 5.0);  // 10/s refill, burst 5, starts full
  EXPECT_DOUBLE_EQ(bucket.Available(0.0), 5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(0.0)) << "burst token " << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(0.0)) << "burst must stop at capacity";

  // 0.35s refills exactly 3.5 tokens: three whole acquisitions fit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(0.35)) << "refilled token " << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(0.35));
  EXPECT_DOUBLE_EQ(bucket.Available(0.35), 0.5);

  // A long idle caps at burst, never beyond it.
  EXPECT_DOUBLE_EQ(bucket.Available(100.0), 5.0);
}

TEST(TokenBucketTest, ClockMovingBackwardsMintsNothing) {
  TokenBucket bucket(1.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  EXPECT_FALSE(bucket.TryAcquire(10.0));
  // A clock hiccup to t=3 must not refill (and must not corrupt state:
  // the next forward second still refills exactly one token).
  EXPECT_FALSE(bucket.TryAcquire(3.0));
  EXPECT_TRUE(bucket.TryAcquire(11.0));
  EXPECT_FALSE(bucket.TryAcquire(11.0));
}

TEST(QosControllerTest, DisabledAdmitsEverythingStateless) {
  QosController qos(QosConfig{});  // rate_per_tenant 0 = off
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(qos.Admit("t" + std::to_string(i), Priority::kLow,
                          static_cast<double>(i)));
  }
  EXPECT_EQ(qos.tracked_tenants(), 0u) << "disabled QoS keeps no buckets";
  EXPECT_EQ(qos.admitted(Priority::kLow), 100u);
}

TEST(QosControllerTest, ReserveRefusesLowClassesFirst) {
  QosConfig config;
  config.rate_per_tenant = 1.0;
  config.burst = 4.0;
  config.reserve_fraction = 0.25;  // reserve: high 0, normal 1, low 2
  QosController qos(config);

  // Bucket starts with 4 tokens. Low drains only down to its reserve of
  // 2; normal down to 1; the last token is high's alone.
  EXPECT_TRUE(qos.Admit("tenant", Priority::kLow, 0.0));   // 4 -> 3
  EXPECT_TRUE(qos.Admit("tenant", Priority::kLow, 0.0));   // 3 -> 2
  EXPECT_FALSE(qos.Admit("tenant", Priority::kLow, 0.0));  // 2 !> 2
  EXPECT_TRUE(qos.Admit("tenant", Priority::kNormal, 0.0));   // 2 -> 1
  EXPECT_FALSE(qos.Admit("tenant", Priority::kNormal, 0.0));  // 1 !> 1
  EXPECT_TRUE(qos.Admit("tenant", Priority::kHigh, 0.0));   // 1 -> 0
  EXPECT_FALSE(qos.Admit("tenant", Priority::kHigh, 0.0));  // empty

  EXPECT_EQ(qos.admitted(Priority::kLow), 2u);
  EXPECT_EQ(qos.admitted(Priority::kNormal), 1u);
  EXPECT_EQ(qos.admitted(Priority::kHigh), 1u);
  EXPECT_EQ(qos.rejected(Priority::kLow), 1u);
  EXPECT_EQ(qos.rejected(Priority::kNormal), 1u);
  EXPECT_EQ(qos.rejected(Priority::kHigh), 1u);

  // Tenants are isolated: a fresh tenant's bucket is untouched.
  EXPECT_TRUE(qos.Admit("other", Priority::kLow, 0.0));
}

TEST(QosControllerTest, TenantCapSharesOneOverflowBucket) {
  QosConfig config;
  config.rate_per_tenant = 1.0;
  config.burst = 2.0;
  config.max_tenants = 1;
  QosController qos(config);

  EXPECT_TRUE(qos.Admit("first", Priority::kHigh, 0.0));
  // Every later tenant shares the single overflow bucket: two tokens
  // between them, however many names arrive.
  EXPECT_TRUE(qos.Admit("second", Priority::kHigh, 0.0));
  EXPECT_TRUE(qos.Admit("third", Priority::kHigh, 0.0));
  EXPECT_FALSE(qos.Admit("fourth", Priority::kHigh, 0.0));
  EXPECT_EQ(qos.tracked_tenants(), 2u);  // "first" + the overflow bucket
  // "first" still has its own tokens.
  EXPECT_TRUE(qos.Admit("first", Priority::kHigh, 0.0));
}

// -- pool-level priority ordering ------------------------------------------

std::vector<ts::ServiceData> TinyWorkload() {
  std::vector<ts::ServiceData> services;
  Rng rng(7);
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = 8.0;
  pattern.noise_stddev = 0.05;
  pattern.feature_weights = {1.0, 0.8};
  pattern.feature_lags = {0.0, 1.0};
  ts::ServiceData service;
  service.name = "svc0";
  service.train = ts::GenerateNormal(pattern, 320, 0, &rng);
  service.test = ts::GenerateNormal(pattern, 160, 320, &rng);
  services.push_back(std::move(service));
  return services;
}

std::shared_ptr<const core::MaceDetector> FittedModel() {
  static const std::shared_ptr<const core::MaceDetector> model = [] {
    core::MaceConfig config;
    config.epochs = 1;
    auto detector = std::make_shared<core::MaceDetector>(config);
    MACE_CHECK_OK(detector->Fit(TinyWorkload()));
    return detector;
  }();
  return model;
}

struct GatedPool {
  std::unique_ptr<ServeFrontend> frontend;
  std::promise<void> gate;
  std::vector<std::vector<double>> values;

  explicit GatedPool(OverloadPolicy policy, size_t capacity) {
    ServeConfig config;
    config.num_shards = 1;
    config.queue_capacity = capacity;
    config.overload_policy = policy;
    auto created = ServeFrontend::Create(FittedModel(), config);
    MACE_CHECK_OK(created.status());
    frontend = std::move(created).value();
    frontend->pool_for_test().BlockShardUntilForTest(
        0, std::shared_future<void>(gate.get_future()));
    values = TinyWorkload()[0].test.values();
  }

  std::future<ScoreBatch> Submit(size_t step, Priority priority) {
    RequestOptions options;
    options.priority = priority;
    auto f = frontend->Submit("tenant", 0, values[step], options);
    MACE_CHECK_OK(f.status());
    return std::move(*f);
  }
};

TEST(PriorityShedTest, ShedVictimizesQueuedLowBeforeIncomingHigh) {
  GatedPool pool(OverloadPolicy::kShed, 4);
  std::vector<std::future<ScoreBatch>> low;
  for (size_t i = 0; i < 4; ++i) {
    low.push_back(pool.Submit(i, Priority::kLow));
  }
  // Queue full of low: an incoming high must displace the newest low,
  // never be shed itself.
  auto high = pool.Submit(4, Priority::kHigh);
  pool.gate.set_value();
  pool.frontend->Flush();

  EXPECT_FALSE(high.get().dropped) << "high shed while low was queued";
  EXPECT_FALSE(low[0].get().dropped);
  EXPECT_FALSE(low[1].get().dropped);
  EXPECT_FALSE(low[2].get().dropped);
  EXPECT_TRUE(low[3].get().dropped) << "newest low is the kShed victim";
  EXPECT_EQ(pool.frontend->Stats().Totals().shed, 1u);
}

TEST(PriorityShedTest, ShedDropsIncomingWhenNothingLowerIsQueued) {
  GatedPool pool(OverloadPolicy::kShed, 4);
  std::vector<std::future<ScoreBatch>> high;
  for (size_t i = 0; i < 4; ++i) {
    high.push_back(pool.Submit(i, Priority::kHigh));
  }
  auto low = pool.Submit(4, Priority::kLow);
  pool.gate.set_value();
  pool.frontend->Flush();

  EXPECT_TRUE(low.get().dropped) << "incoming low loses to queued high";
  for (auto& f : high) EXPECT_FALSE(f.get().dropped);
}

TEST(PriorityShedTest, LatestOnlyVictimizesOldestOfLowestClass) {
  GatedPool pool(OverloadPolicy::kLatestOnly, 4);
  auto low_old = pool.Submit(0, Priority::kLow);
  auto high_old = pool.Submit(1, Priority::kHigh);
  auto low_new = pool.Submit(2, Priority::kLow);
  auto high_new = pool.Submit(3, Priority::kHigh);
  // Incoming normal: the oldest queued item of the lowest class at or
  // below normal's rank is the victim — low_old, not either high.
  auto normal = pool.Submit(4, Priority::kNormal);
  pool.gate.set_value();
  pool.frontend->Flush();

  EXPECT_TRUE(low_old.get().dropped);
  EXPECT_FALSE(low_new.get().dropped);
  EXPECT_FALSE(high_old.get().dropped);
  EXPECT_FALSE(high_new.get().dropped);
  EXPECT_FALSE(normal.get().dropped);
}

TEST(PriorityShedTest, LatestOnlyDropsIncomingWhenEverythingOutranksIt) {
  GatedPool pool(OverloadPolicy::kLatestOnly, 4);
  std::vector<std::future<ScoreBatch>> high;
  for (size_t i = 0; i < 4; ++i) {
    high.push_back(pool.Submit(i, Priority::kHigh));
  }
  auto low = pool.Submit(4, Priority::kLow);
  pool.gate.set_value();
  pool.frontend->Flush();

  EXPECT_TRUE(low.get().dropped);
  for (auto& f : high) EXPECT_FALSE(f.get().dropped);
}

}  // namespace
}  // namespace mace::serve
