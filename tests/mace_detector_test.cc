#include "core/mace_detector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "ts/generator.h"
#include "ts/profiles.h"

namespace mace::core {
namespace {

/// A tiny 2-service workload with injected anomalies, fast to train on.
std::vector<ts::ServiceData> TinyWorkload(uint64_t seed = 1) {
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 2; ++s) {
    Rng rng(seed + s);
    ts::NormalPattern pattern;
    pattern.kind = ts::WaveformKind::kSinusoid;
    pattern.period = s == 0 ? 8.0 : 13.3;
    pattern.amplitude = 1.0;
    pattern.noise_stddev = 0.05;
    pattern.feature_weights = {1.0, 0.8};
    pattern.feature_lags = {0.0, 1.0};
    ts::ServiceData service;
    service.name = "svc" + std::to_string(s);
    service.train = ts::GenerateNormal(pattern, 400, 0, &rng);
    service.test = ts::GenerateNormal(pattern, 240, 400, &rng);
    ts::AnomalyInjectionConfig inject;
    inject.anomaly_ratio = 0.08;
    inject.min_segment = 6;
    inject.max_segment = 16;
    ts::InjectAnomalies(inject, pattern, &service.test, &rng);
    services.push_back(std::move(service));
  }
  return services;
}

MaceConfig FastConfig() {
  MaceConfig config;
  config.epochs = 3;
  config.num_bases = 10;
  return config;
}

TEST(MaceDetectorTest, FitThenScoreProducesPerStepScores) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());
  auto scores = detector.Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), services[0].test.length());
  for (double s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

TEST(MaceDetectorTest, DetectsInjectedAnomalies) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());
  for (size_t s = 0; s < services.size(); ++s) {
    auto scores = detector.Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(scores.ok());
    auto best =
        eval::BestF1Threshold(*scores, services[s].test.labels());
    ASSERT_TRUE(best.ok());
    EXPECT_GT(best->metrics.f1, 0.6) << "service " << s;
  }
}

TEST(MaceDetectorTest, ScoreBeforeFitFails) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  EXPECT_EQ(detector.Score(0, services[0].test).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MaceDetectorTest, UnknownServiceIndexFails) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());
  EXPECT_EQ(detector.Score(5, services[0].test).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(detector.Score(-1, services[0].test).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MaceDetectorTest, FitValidatesInput) {
  MaceDetector detector(FastConfig());
  EXPECT_FALSE(detector.Fit({}).ok());
  auto services = TinyWorkload();
  services[1].train = ts::TimeSeries(
      std::vector<std::vector<double>>(100, std::vector<double>(3, 0.0)));
  EXPECT_FALSE(detector.Fit(services).ok());
}

TEST(MaceDetectorTest, SubspacesAreExtractedPerService) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());
  ASSERT_EQ(detector.subspaces().size(), 2u);
  // Service 0 oscillates at 5 cycles/40, service 1 at 3 cycles/40: their
  // top bases differ.
  EXPECT_NE(detector.subspaces()[0].bases, detector.subspaces()[1].bases);
}

TEST(MaceDetectorTest, EpochLossesDecrease) {
  MaceConfig config = FastConfig();
  config.epochs = 4;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  const auto& losses = detector.epoch_losses();
  ASSERT_EQ(losses.size(), 4u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(MaceDetectorTest, ScoreUnseenWorksOnNewService) {
  MaceDetector detector(FastConfig());
  ASSERT_TRUE(detector.Fit(TinyWorkload(1)).ok());
  const auto other = TinyWorkload(99);
  auto scores = detector.ScoreUnseen(other[1]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), other[1].test.length());
  auto best = eval::BestF1Threshold(*scores, other[1].test.labels());
  ASSERT_TRUE(best.ok());
  // Transfer quality on this tiny workload is noisy; require it to beat a
  // trivially bad detector by a clear margin.
  EXPECT_GT(best->metrics.f1, 0.3);
}

// Regression: ScoreUnseen used to skip split validation, so a
// mismatched-width row indexed past the scaler moments and a too-short
// split silently returned an all-mean score vector. Every malformed
// split must now fail with a descriptive error.
TEST(MaceDetectorTest, ScoreUnseenValidatesSplits) {
  MaceDetector unfitted(FastConfig());
  const auto services = TinyWorkload();
  EXPECT_EQ(unfitted.ScoreUnseen(services[0]).status().code(),
            StatusCode::kFailedPrecondition);

  MaceDetector detector(FastConfig());
  ASSERT_TRUE(detector.Fit(services).ok());

  // Wrong feature count in either split.
  Rng rng(3);
  ts::NormalPattern narrow;
  narrow.feature_weights = {1.0};
  narrow.feature_lags = {0.0};
  ts::ServiceData single;
  single.train = ts::GenerateNormal(narrow, 200, 0, &rng);
  single.test = ts::GenerateNormal(narrow, 100, 200, &rng);
  auto mismatch = detector.ScoreUnseen(single);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("1 features"),
            std::string::npos)
      << mismatch.status().message();
  ts::ServiceData mixed;
  mixed.train = services[0].train;
  mixed.test = single.test;
  EXPECT_FALSE(detector.ScoreUnseen(mixed).ok());

  // Splits shorter than the window name both lengths.
  ts::ServiceData short_train;
  short_train.train = services[0].train.Slice(0, 10);
  short_train.test = services[0].test;
  auto too_short = detector.ScoreUnseen(short_train);
  ASSERT_FALSE(too_short.ok());
  EXPECT_NE(too_short.status().message().find("10 steps"),
            std::string::npos)
      << too_short.status().message();
  ts::ServiceData short_test;
  short_test.train = services[0].train;
  short_test.test = services[0].test.Slice(0, 5);
  EXPECT_FALSE(detector.ScoreUnseen(short_test).ok());
}

TEST(MaceDetectorTest, ParameterCountPositiveAfterFit) {
  MaceDetector detector(FastConfig());
  EXPECT_EQ(detector.ParameterCount(), 0);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  EXPECT_GT(detector.ParameterCount(), 0);
  EXPECT_GT(detector.PeakActivationElements(), 0);
}

TEST(MaceDetectorTest, FullSpectrumAblationUsesAllBases) {
  MaceConfig config = FastConfig();
  config.use_context_aware_dft = false;
  MaceDetector detector(config);
  ASSERT_TRUE(detector.Fit(TinyWorkload()).ok());
  EXPECT_EQ(detector.subspaces()[0].bases.size(), 20u);
  EXPECT_EQ(detector.subspaces()[0].bases,
            detector.subspaces()[1].bases);
}

TEST(MaceDetectorTest, DeterministicGivenSeed) {
  const auto services = TinyWorkload();
  MaceDetector a(FastConfig());
  MaceDetector b(FastConfig());
  ASSERT_TRUE(a.Fit(services).ok());
  ASSERT_TRUE(b.Fit(services).ok());
  auto sa = a.Score(0, services[0].test);
  auto sb = b.Score(0, services[0].test);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (size_t t = 0; t < sa->size(); ++t) {
    EXPECT_DOUBLE_EQ((*sa)[t], (*sb)[t]);
  }
}

TEST(MaceDetectorTest, AnomalousStepsScoreHigherOnAverage) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());
  auto scores = detector.Score(0, services[0].test);
  ASSERT_TRUE(scores.ok());
  double normal = 0.0, anomalous = 0.0;
  int nc = 0, ac = 0;
  for (size_t t = 0; t < scores->size(); ++t) {
    if (services[0].test.is_anomaly(t)) {
      anomalous += (*scores)[t];
      ++ac;
    } else {
      normal += (*scores)[t];
      ++nc;
    }
  }
  ASSERT_GT(ac, 0);
  EXPECT_GT(anomalous / ac, 2.0 * normal / nc);
}

TEST(MaceDetectorTest, ValidateConfigAcceptsDefaultsAndNamesViolations) {
  EXPECT_TRUE(MaceDetector::ValidateConfig(MaceConfig()).ok());

  auto message_of = [](MaceConfig config) {
    const Status status = MaceDetector::ValidateConfig(config);
    EXPECT_FALSE(status.ok());
    return status.message();
  };
  MaceConfig config;
  config.score_stride = 0;
  EXPECT_NE(message_of(config).find("score_stride"), std::string::npos);
  config = MaceConfig();
  config.train_stride = 0;
  EXPECT_NE(message_of(config).find("train_stride"), std::string::npos);
  config = MaceConfig();
  config.score_stride = config.window + 1;
  EXPECT_NE(message_of(config).find("score_stride"), std::string::npos);
  config = MaceConfig();
  config.time_kernel = 4;  // even
  EXPECT_NE(message_of(config).find("time_kernel"), std::string::npos);
  config = MaceConfig();
  config.window = 3;
  EXPECT_NE(message_of(config).find("window"), std::string::npos);
  config = MaceConfig();
  config.num_bases = 0;
  EXPECT_NE(message_of(config).find("num_bases"), std::string::npos);
  config = MaceConfig();
  config.score_threads = 0;
  EXPECT_NE(message_of(config).find("score_threads"), std::string::npos);
  config = MaceConfig();
  config.score_batch = 0;
  EXPECT_NE(message_of(config).find("score_batch"), std::string::npos);
}

TEST(MaceDetectorDeathTest, ConstructorRejectsZeroScoreStride) {
  MaceConfig config;
  config.score_stride = 0;  // would loop ScoreScaled forever
  EXPECT_DEATH(MaceDetector{config}, "score_stride");
}

TEST(MaceDetectorDeathTest, ConstructorRejectsZeroTrainStride) {
  MaceConfig config;
  config.train_stride = 0;
  EXPECT_DEATH(MaceDetector{config}, "train_stride");
}

TEST(MaceDetectorDeathTest, ConstructorRejectsStrideBeyondWindow) {
  MaceConfig config;
  config.score_stride = config.window + 1;
  EXPECT_DEATH(MaceDetector{config}, "score_stride");
}

TEST(MaceDetectorDeathTest, ConstructorRejectsEvenTimeKernel) {
  MaceConfig config;
  config.time_kernel = 2;
  EXPECT_DEATH(MaceDetector{config}, "time_kernel");
}

/// Services whose feature counts disagree (front has 3, second has 2):
/// Fit must reject them *after* it has started looking at the data.
std::vector<ts::ServiceData> MismatchedWorkload() {
  auto services = TinyWorkload();
  Rng rng(99);
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = 9.0;
  pattern.feature_weights = {1.0, 0.7, 0.4};
  pattern.feature_lags = {0.0, 1.0, 2.0};
  services[0].train = ts::GenerateNormal(pattern, 400, 0, &rng);
  services[0].test = ts::GenerateNormal(pattern, 240, 400, &rng);
  return services;
}

TEST(MaceDetectorTest, FailedRefitLeavesPreviousFittedStateIntact) {
  MaceDetector detector(FastConfig());
  const auto services = TinyWorkload();
  ASSERT_TRUE(detector.Fit(services).ok());

  std::vector<std::vector<double>> rows(
      static_cast<size_t>(detector.config().window),
      std::vector<double>(2));
  for (size_t t = 0; t < rows.size(); ++t) {
    rows[t][0] = std::sin(0.5 * static_cast<double>(t));
    rows[t][1] = std::cos(0.3 * static_cast<double>(t));
  }
  const auto before = detector.ScoreWindow(0, rows);
  ASSERT_TRUE(before.ok());

  EXPECT_FALSE(detector.Fit(MismatchedWorkload()).ok());

  // The previous model keeps scoring 2-feature windows with identical
  // results (the failed refit must not have torn num_features_ or the
  // per-service preprocessing out from under it).
  const auto after = detector.ScoreWindow(0, rows);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t t = 0; t < before->size(); ++t) {
    EXPECT_DOUBLE_EQ((*before)[t], (*after)[t]) << "step " << t;
  }
  const auto scores = detector.Score(0, services[0].test);
  EXPECT_TRUE(scores.ok());
}

TEST(MaceDetectorTest, FailedFirstFitLeavesDetectorUnfitted) {
  MaceDetector detector(FastConfig());
  EXPECT_FALSE(detector.Fit(MismatchedWorkload()).ok());
  EXPECT_EQ(detector.ParameterCount(), 0);
  const auto services = TinyWorkload();
  const auto scores = detector.Score(0, services[0].test);
  ASSERT_FALSE(scores.ok());  // clean "Score before Fit", not a crash
}

}  // namespace
}  // namespace mace::core
