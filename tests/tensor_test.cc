#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mace::tensor {
namespace {

TEST(TensorTest, DefaultUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 2});
  for (double v : z.data()) EXPECT_EQ(v, 0.0);
  Tensor o = Tensor::Ones({3});
  for (double v : o.data()) EXPECT_EQ(v, 1.0);
  Tensor f = Tensor::Full({2}, 7.5);
  EXPECT_EQ(f.data()[1], 7.5);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(3.25);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), 3.25);
}

TEST(TensorTest, FromVectorAndAccess) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at({0, 0}), 1.0);
  EXPECT_EQ(t.at({1, 2}), 6.0);
  t.set({1, 0}, -9.0);
  EXPECT_EQ(t.at({1, 0}), -9.0);
}

TEST(TensorTest, OneDimFactory) {
  Tensor t = Tensor::FromVector({1.0, 2.0});
  EXPECT_EQ(t.shape(), (Shape{2}));
}

TEST(TensorTest, DimNegativeAxis) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, RandomFactoriesRespectBounds) {
  Rng rng(3);
  Tensor u = Tensor::RandomUniform({100}, &rng, -1.0, 1.0);
  for (double v : u.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  Tensor g = Tensor::RandomGaussian({1000}, &rng, 5.0, 0.1);
  double sum = 0.0;
  for (double v : g.data()) sum += v;
  EXPECT_NEAR(sum / 1000.0, 5.0, 0.05);
}

TEST(TensorTest, DetachDropsGraphAndGrad) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 3.0);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data(), b.data());
}

TEST(TensorTest, BackwardSimpleChain) {
  // f(x) = sum(3 * x), df/dx_i = 3.
  Tensor x = Tensor::FromVector({1.0, 2.0, 3.0}, {3}, true);
  Tensor loss = Sum(MulScalar(x, 3.0));
  loss.Backward();
  for (double g : x.grad()) EXPECT_DOUBLE_EQ(g, 3.0);
}

TEST(TensorTest, BackwardAccumulatesThroughSharedNodes) {
  // f(x) = sum(x * x) via sharing the same tensor on both sides: df/dx = 2x.
  Tensor x = Tensor::FromVector({2.0, -3.0}, {2}, true);
  Tensor loss = Sum(Mul(x, x));
  loss.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 4.0);
  EXPECT_DOUBLE_EQ(x.grad()[1], -6.0);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({1.0}, {1}, true);
  Sum(Mul(x, x)).Backward();
  EXPECT_NE(x.grad()[0], 0.0);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::FromVector({1.0}, {1}, true);
  Sum(x).Backward();
  Sum(x).Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 2.0);
}

TEST(TensorTest, NoGradLeafStaysGradless) {
  Tensor x = Tensor::FromVector({1.0, 2.0}, {2}, false);
  Tensor y = Tensor::FromVector({3.0, 4.0}, {2}, true);
  Tensor loss = Sum(Mul(x, y));
  loss.Backward();
  EXPECT_TRUE(x.grad().empty());
  EXPECT_DOUBLE_EQ(y.grad()[0], 1.0);
  EXPECT_DOUBLE_EQ(y.grad()[1], 2.0);
}

TEST(TensorTest, ToStringShowsShape) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_NE(t.ToString().find("[2, 2]"), std::string::npos);
}

}  // namespace
}  // namespace mace::tensor
