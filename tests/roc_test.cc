#include "eval/roc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mace::eval {
namespace {

TEST(RocTest, PerfectSeparationGivesUnitAuc) {
  const std::vector<double> scores = {0.1, 0.2, 0.9, 0.8};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->auroc, 1.0);
  EXPECT_DOUBLE_EQ(q->auprc, 1.0);
}

TEST(RocTest, InvertedScoresGiveZeroAuroc) {
  const std::vector<double> scores = {0.9, 0.8, 0.1, 0.2};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->auroc, 0.0);
}

TEST(RocTest, RandomScoresGiveHalfAuroc) {
  Rng rng(3);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.Uniform());
    labels.push_back(rng.Bernoulli(0.3) ? 1 : 0);
  }
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->auroc, 0.5, 0.03);
}

TEST(RocTest, TiedScoresHandledAsOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<uint8_t> labels = {1, 0, 1, 0};
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->roc.size(), 1u);
  EXPECT_NEAR(q->auroc, 0.5, 1e-12);
}

TEST(RocTest, CurveEndsAtUnitCorner) {
  const std::vector<double> scores = {3.0, 1.0, 2.0, 0.5};
  const std::vector<uint8_t> labels = {1, 0, 0, 1};
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->roc.back().true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(q->roc.back().false_positive_rate, 1.0);
}

TEST(RocTest, ErrorsWithoutBothClasses) {
  EXPECT_FALSE(ComputeRanking({1.0, 2.0}, {1, 1}).ok());
  EXPECT_FALSE(ComputeRanking({1.0, 2.0}, {0, 0}).ok());
  EXPECT_FALSE(ComputeRanking({}, {}).ok());
  EXPECT_FALSE(ComputeRanking({1.0}, {1, 0}).ok());
}

TEST(RocTest, AurocMatchesPairwiseProbability) {
  // AUROC equals P(score_pos > score_neg) + 0.5 P(tie).
  Rng rng(7);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 1000; ++i) {
    const bool positive = rng.Bernoulli(0.25);
    scores.push_back(rng.Gaussian(positive ? 1.0 : 0.0, 1.0));
    labels.push_back(positive ? 1 : 0);
  }
  auto q = ComputeRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  // Brute-force pairwise statistic.
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] == 0) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0) continue;
      wins += scores[i] > scores[j] ? 1.0 : (scores[i] == scores[j] ? 0.5
                                                                    : 0.0);
      ++pairs;
    }
  }
  EXPECT_NEAR(q->auroc, wins / static_cast<double>(pairs), 1e-9);
}

}  // namespace
}  // namespace mace::eval
