#include "core/dualistic_conv.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mace::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(DualisticConvolveTest, GammaOneIsPlainAveraging) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> out =
      DualisticConvolve(x, 3, 1, 1.0, 5.0, DualisticMode::kPeak);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 2.0, 1e-9);
  EXPECT_NEAR(out[1], 3.0, 1e-9);
  EXPECT_NEAR(out[2], 4.0, 1e-9);
}

TEST(DualisticConvolveTest, LargeGammaApproachesMax) {
  const std::vector<double> x = {0.1, 0.2, 3.0, 0.1, 0.2};
  const std::vector<double> out =
      DualisticConvolve(x, 5, 1, 21.0, 5.0, DualisticMode::kPeak);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 3.0, 0.3);
}

TEST(DualisticConvolveTest, ValleyApproachesMin) {
  const std::vector<double> x = {3.0, 2.9, -1.0, 3.1, 2.8};
  const std::vector<double> out =
      DualisticConvolve(x, 5, 1, 21.0, 5.0, DualisticMode::kValley);
  EXPECT_NEAR(out[0], -1.0, 0.45);
}

TEST(DualisticConvolveTest, PeakAtLeastValleyOnPositiveData) {
  Rng rng(5);
  std::vector<double> x(50);
  for (double& v : x) v = rng.Uniform(0.2, 2.0);
  const auto peak = DualisticConvolve(x, 5, 1, 7.0, 5.0,
                                      DualisticMode::kPeak);
  const auto valley = DualisticConvolve(x, 5, 1, 7.0, 5.0,
                                        DualisticMode::kValley);
  for (size_t i = 0; i < peak.size(); ++i) {
    EXPECT_GE(peak[i], valley[i] - 1e-9);
  }
}

TEST(DualisticConvolveTest, BoundedByWindowExtremes) {
  // The power mean always lies within [min, max] of the window.
  Rng rng(7);
  std::vector<double> x(40);
  for (double& v : x) v = rng.Uniform(-2.0, 2.0);
  const auto out = DualisticConvolve(x, 4, 4, 9.0, 5.0,
                                     DualisticMode::kPeak);
  for (size_t i = 0; i < out.size(); ++i) {
    double lo = x[4 * i], hi = x[4 * i];
    for (int j = 1; j < 4; ++j) {
      lo = std::min(lo, x[4 * i + j]);
      hi = std::max(hi, x[4 * i + j]);
    }
    EXPECT_GE(out[i], lo - 1e-9);
    EXPECT_LE(out[i], hi + 1e-9);
  }
}

TEST(DualisticConvolveTest, StrideControlsOutputLength) {
  const std::vector<double> x(20, 1.0);
  EXPECT_EQ(DualisticConvolve(x, 4, 4, 3, 5, DualisticMode::kPeak).size(),
            5u);
  EXPECT_EQ(DualisticConvolve(x, 4, 1, 3, 5, DualisticMode::kPeak).size(),
            17u);
}

TEST(DualisticAmplifyTest, PreservesLength) {
  const std::vector<double> x(33, 0.5);
  EXPECT_EQ(DualisticAmplify(x, 5, 7.0, 5.0).size(), 33u);
}

TEST(DualisticAmplifyTest, ConstantSignalUnchanged) {
  const std::vector<double> x(20, 2.0);
  const auto out = DualisticAmplify(x, 5, 7.0, 5.0);
  for (double v : out) EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(DualisticAmplifyTest, ExtendsPointSpike) {
  // The paper's S3: a 1-step spike spreads across the kernel footprint.
  std::vector<double> x(21, 0.0);
  x[10] = 4.0;
  const auto out = DualisticAmplify(x, 5, 11.0, 5.0);
  int elevated = 0;
  for (double v : out) elevated += v > 0.5;
  EXPECT_GE(elevated, 4);
  // Far away from the spike the signal stays near zero.
  EXPECT_NEAR(out[0], 0.0, 1e-6);
  EXPECT_NEAR(out[20], 0.0, 1e-6);
}

TEST(DualisticAmplifyTest, DownwardSpikeAlsoExtended) {
  std::vector<double> down(21, 0.0);
  down[10] = -3.0;
  const auto out = DualisticAmplify(down, 5, 11.0, 5.0);
  int depressed = 0;
  for (double v : out) depressed += v < -0.4;
  EXPECT_GE(depressed, 4);
  EXPECT_NEAR(out[0], 0.0, 0.05);
}

TEST(DualisticAmplifyDeathTest, RequiresOddKernel) {
  const std::vector<double> x(10, 0.0);
  EXPECT_DEATH(DualisticAmplify(x, 4, 7.0, 5.0), "odd");
}

TEST(DualisticConvLayerTest, OutputShape) {
  Rng rng(9);
  DualisticConvLayer layer(3, 8, /*kernel=*/4, /*stride=*/4, 7.0, 5.0,
                           DualisticMode::kPeak, &rng);
  Tensor x = Tensor::Zeros({1, 3, 16});
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{1, 8, 4}));
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(DualisticConvLayerTest, ValleyApproximatesSegmentMinimum) {
  // Fig 4(a): the frequency-domain valley convolution picks the minimum of
  // each kernel-length segment (large gamma, averaging kernel).
  Rng rng(11);
  DualisticConvLayer valley(1, 1, 4, 4, 21.0, 5.0, DualisticMode::kValley,
                            &rng);
  Tensor x = Tensor::FromVector({0.9, 1.1, 0.2, 1.0, 2.0, 1.9, 0.7, 1.8},
                                {1, 1, 8});
  Tensor out = valley.Forward(x);
  ASSERT_EQ(out.numel(), 2);
  EXPECT_NEAR(out.data()[0], 0.2, 0.35);
  EXPECT_NEAR(out.data()[1], 0.7, 0.35);
}

TEST(DualisticConvLayerTest, PeakApproximatesSegmentMaximum) {
  Rng rng(12);
  DualisticConvLayer peak(1, 1, 4, 4, 21.0, 5.0, DualisticMode::kPeak,
                          &rng);
  Tensor x = Tensor::FromVector({0.9, 1.1, 0.2, 1.0, 2.0, 1.9, 0.7, 1.8},
                                {1, 1, 8});
  Tensor out = peak.Forward(x);
  EXPECT_NEAR(out.data()[0], 1.1, 0.35);
  EXPECT_NEAR(out.data()[1], 2.0, 0.35);
}

TEST(DualisticConvLayerTest, GradientsFlowToKernel) {
  Rng rng(13);
  DualisticConvLayer layer(2, 4, 3, 3, 7.0, 5.0, DualisticMode::kPeak,
                           &rng);
  Tensor x = Tensor::RandomUniform({1, 2, 9}, &rng, 0.2, 1.5);
  Sum(Square(layer.Forward(x))).Backward();
  double norm = 0.0;
  for (double g : layer.Parameters()[0].grad()) norm += std::fabs(g);
  EXPECT_GT(norm, 0.0);
}

TEST(DualisticConvLayerTest, HighVarianceInputHarderToRepresent) {
  // Theorem 1's consequence: the gap between the dualistic-conv latent and
  // the original values grows with the variance of the window.
  Rng rng(17);
  DualisticConvLayer layer(1, 1, 4, 4, 9.0, 5.0, DualisticMode::kPeak,
                           &rng);
  auto gap_for = [&](double stddev) {
    double total = 0.0;
    for (int trial = 0; trial < 32; ++trial) {
      std::vector<double> values(8);
      for (double& v : values) v = rng.Gaussian(1.0, stddev);
      Tensor x = Tensor::FromVector(values, {1, 1, 8});
      Tensor latent = layer.Forward(x);  // [1, 1, 2]
      // Gap: latent value vs. each window element (Definition 1).
      for (int seg = 0; seg < 2; ++seg) {
        for (int j = 0; j < 4; ++j) {
          total += std::fabs(latent.data()[seg] - values[4 * seg + j]);
        }
      }
    }
    return total;
  };
  EXPECT_GT(gap_for(1.0), gap_for(0.1));
}

}  // namespace
}  // namespace mace::core
