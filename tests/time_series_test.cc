#include "ts/time_series.h"

#include <gtest/gtest.h>

#include "ts/scaler.h"

namespace mace::ts {
namespace {

TimeSeries MakeSeries(size_t length, int features, double start = 0.0) {
  std::vector<std::vector<double>> values(length,
                                          std::vector<double>(features));
  for (size_t t = 0; t < length; ++t) {
    for (int f = 0; f < features; ++f) {
      values[t][f] = start + static_cast<double>(t) + 100.0 * f;
    }
  }
  return TimeSeries(std::move(values));
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries series = MakeSeries(10, 3);
  EXPECT_EQ(series.length(), 10u);
  EXPECT_EQ(series.num_features(), 3);
  EXPECT_FALSE(series.has_labels());
  EXPECT_DOUBLE_EQ(series.value(4, 2), 204.0);
  EXPECT_DOUBLE_EQ(series.AnomalyRatio(), 0.0);
}

TEST(TimeSeriesTest, LabelsAndAnomalyRatio) {
  TimeSeries series({{1.0}, {2.0}, {3.0}, {4.0}}, {0, 1, 1, 0});
  EXPECT_TRUE(series.has_labels());
  EXPECT_TRUE(series.is_anomaly(1));
  EXPECT_FALSE(series.is_anomaly(3));
  EXPECT_DOUBLE_EQ(series.AnomalyRatio(), 0.5);
}

TEST(TimeSeriesTest, FeatureExtraction) {
  TimeSeries series = MakeSeries(5, 2);
  const std::vector<double> f1 = series.Feature(1);
  EXPECT_EQ(f1.size(), 5u);
  EXPECT_DOUBLE_EQ(f1[3], 103.0);
}

TEST(TimeSeriesTest, SliceKeepsLabels) {
  TimeSeries series({{1.0}, {2.0}, {3.0}, {4.0}}, {0, 1, 1, 0});
  TimeSeries sliced = series.Slice(1, 2);
  EXPECT_EQ(sliced.length(), 2u);
  EXPECT_TRUE(sliced.is_anomaly(0));
  EXPECT_TRUE(sliced.is_anomaly(1));
  EXPECT_DOUBLE_EQ(sliced.value(0, 0), 2.0);
}

TEST(WindowTest, WindowToTensorIsChannelsFirst) {
  TimeSeries series = MakeSeries(6, 2);
  tensor::Tensor w = WindowToTensor(series, 1, 3);
  EXPECT_EQ(w.shape(), (tensor::Shape{2, 3}));
  EXPECT_DOUBLE_EQ(w.at({0, 0}), 1.0);   // feature 0, step 1
  EXPECT_DOUBLE_EQ(w.at({1, 2}), 103.0); // feature 1, step 3
}

TEST(WindowTest, MakeWindowsCountAndStarts) {
  TimeSeries series = MakeSeries(20, 1);
  auto batch = MakeWindows(series, 8, 4);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->windows.size(), 4u);  // starts 0, 4, 8, 12
  EXPECT_EQ(batch->starts, (std::vector<size_t>{0, 4, 8, 12}));
}

TEST(WindowTest, MakeWindowsFlagsAnomalousWindows) {
  std::vector<std::vector<double>> values(12, {0.0});
  std::vector<uint8_t> labels(12, 0);
  labels[5] = 1;
  TimeSeries series(std::move(values), std::move(labels));
  auto batch = MakeWindows(series, 4, 4);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->any_anomaly, (std::vector<uint8_t>{0, 1, 0}));
}

TEST(WindowTest, ErrorsOnShortSeriesAndBadArgs) {
  TimeSeries series = MakeSeries(5, 1);
  EXPECT_FALSE(MakeWindows(series, 10, 1).ok());
  EXPECT_FALSE(MakeWindows(series, 0, 1).ok());
  EXPECT_FALSE(MakeWindows(series, 4, 0).ok());
}

TEST(ScalerTest, StandardScalerZeroMeanUnitVariance) {
  TimeSeries series = MakeSeries(100, 2);
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries scaled = scaler.Transform(series);
  for (int f = 0; f < 2; ++f) {
    double sum = 0.0, sq = 0.0;
    for (size_t t = 0; t < scaled.length(); ++t) {
      sum += scaled.value(t, f);
      sq += scaled.value(t, f) * scaled.value(t, f);
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-9);
    EXPECT_NEAR(sq / 100.0, 1.0, 1e-9);
  }
}

TEST(ScalerTest, InverseTransformRoundTrips) {
  TimeSeries series = MakeSeries(50, 2);
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries round = scaler.InverseTransform(scaler.Transform(series));
  for (size_t t = 0; t < series.length(); ++t) {
    EXPECT_NEAR(round.value(t, 0), series.value(t, 0), 1e-9);
  }
}

TEST(ScalerTest, ConstantFeatureDoesNotBlowUp) {
  TimeSeries series({{5.0}, {5.0}, {5.0}});
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries scaled = scaler.Transform(series);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(scaled.value(t, 0), 0.0);
  }
}

TEST(ScalerTest, MinMaxMapsToUnitInterval) {
  TimeSeries series = MakeSeries(10, 1);
  MinMaxScaler scaler;
  scaler.Fit(series);
  TimeSeries scaled = scaler.Transform(series);
  EXPECT_DOUBLE_EQ(scaled.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.value(9, 0), 1.0);
}

TEST(ScalerTest, TransformPreservesLabels) {
  TimeSeries series({{1.0}, {2.0}}, {1, 0});
  StandardScaler scaler;
  scaler.Fit(series);
  EXPECT_TRUE(scaler.Transform(series).is_anomaly(0));
}

}  // namespace
}  // namespace mace::ts
