// MWIREv1 framing and payload codecs (src/wire/): round trips, chunked
// reassembly across arbitrary byte boundaries, the connection-fatal
// header/CRC malformations, payload-level validation (which must NOT be
// connection-fatal — the caller answers with an error response), the
// router's routing peek, and the pinned ring/tenant hashes.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::wire {
namespace {

std::vector<uint8_t> EncodedScoreRequest(
    const std::string& tenant = "tenant-a", int32_t service = 1,
    std::vector<double> values = {1.5, -2.25}) {
  ScoreRequest request;
  request.tenant = tenant;
  request.service = service;
  request.values = std::move(values);
  std::vector<uint8_t> payload;
  EncodeScoreRequest(request, &payload);
  return payload;
}

OwnedFrame DecodeWhole(const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  auto next = decoder.Next();
  MACE_CHECK_OK(next.status());
  MACE_CHECK(next->has_value()) << "expected a complete frame";
  return std::move(**next);
}

TEST(FrameTest, AppendThenDecodeRoundTrips) {
  const std::vector<uint8_t> payload = EncodedScoreRequest();
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kScoreRequest, 42, payload);
  ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());

  const OwnedFrame frame = DecodeWhole(bytes);
  EXPECT_EQ(frame.type, FrameType::kScoreRequest);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, EmptyPayloadFramesWork) {
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kPing, 7, nullptr, 0);
  const OwnedFrame frame = DecodeWhole(bytes);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, ReassemblesAcrossSingleByteChunks) {
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kScoreRequest, 1, EncodedScoreRequest());
  AppendFrame(&bytes, FrameType::kPing, 2, nullptr, 0);
  AppendFrame(&bytes, FrameType::kCloseRequest, 3, EncodedScoreRequest());

  FrameDecoder decoder;
  std::vector<OwnedFrame> frames;
  for (const uint8_t byte : bytes) {
    decoder.Append(&byte, 1);
    for (;;) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().message();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_EQ(frames[2].request_id, 3u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, PartialFrameAsksForMoreBytes) {
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kScoreRequest, 9, EncodedScoreRequest());
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size() - 5);
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

// Each header malformation must poison the stream permanently: framing
// is lost, there is no resynchronization point.
void ExpectFatal(std::vector<uint8_t> bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  auto next = decoder.Next();
  EXPECT_FALSE(next.ok());
  // Poisoned: even appending a pristine frame cannot revive the stream.
  std::vector<uint8_t> good;
  AppendFrame(&good, FrameType::kPing, 1, nullptr, 0);
  decoder.Append(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, HostileHeadersAreConnectionFatal) {
  std::vector<uint8_t> valid;
  AppendFrame(&valid, FrameType::kScoreRequest, 11, EncodedScoreRequest());

  auto mutated = [&](size_t offset, uint8_t byte) {
    std::vector<uint8_t> copy = valid;
    copy[offset] = byte;
    return copy;
  };
  ExpectFatal(mutated(0, 'X'));     // magic
  ExpectFatal(mutated(4, 9));       // version
  ExpectFatal(mutated(5, 0));       // frame type 0: unknown
  ExpectFatal(mutated(5, 0xee));    // frame type: unknown
  ExpectFatal(mutated(6, 1));       // reserved must be zero
  ExpectFatal(mutated(19, 0xff));   // payload length > kMaxPayload
  ExpectFatal(mutated(valid.size() - 1,
                      static_cast<uint8_t>(valid.back()) ^ 0x01));  // CRC
}

TEST(FrameTest, KnownTypePredicateMatchesEnum) {
  EXPECT_FALSE(IsKnownFrameType(0));
  for (uint8_t t = 1; t <= 8; ++t) EXPECT_TRUE(IsKnownFrameType(t));
  EXPECT_FALSE(IsKnownFrameType(9));
  EXPECT_STREQ(FrameTypeName(FrameType::kScoreRequest), "score_request");
}

// -- payload codecs --------------------------------------------------------

TEST(MessagesTest, ScoreRequestRoundTripsAllFields) {
  ScoreRequest request;
  request.tenant = "team-a/checkout";
  request.service = 3;
  request.priority = 2;
  request.policy_override = 1;
  request.values = {0.0, -1.0, 1e300, 5e-324};
  std::vector<uint8_t> payload;
  EncodeScoreRequest(request, &payload);

  auto decoded = DecodeScoreRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->tenant, request.tenant);
  EXPECT_EQ(decoded->service, request.service);
  EXPECT_EQ(decoded->priority, request.priority);
  EXPECT_EQ(decoded->policy_override, request.policy_override);
  EXPECT_EQ(decoded->values, request.values);
}

TEST(MessagesTest, ScoreRequestPreservesNonFiniteBitPatterns) {
  // NaN/Inf must cross the wire bit-intact: the server's non-finite
  // policy decides their fate, never the codec.
  const uint64_t quiet_nan = 0x7ff8000000000001ull;
  double nan_value = 0.0;
  std::memcpy(&nan_value, &quiet_nan, sizeof(nan_value));
  ScoreRequest request;
  request.tenant = "t";
  request.values = {nan_value};
  std::vector<uint8_t> payload;
  EncodeScoreRequest(request, &payload);
  auto decoded = DecodeScoreRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  uint64_t bits = 0;
  std::memcpy(&bits, &decoded->values[0], sizeof(bits));
  EXPECT_EQ(bits, quiet_nan);
}

TEST(MessagesTest, ScoreRequestRejectsHostilePayloads) {
  const std::vector<uint8_t> valid = EncodedScoreRequest();
  auto decode = [](std::vector<uint8_t> payload) {
    return DecodeScoreRequest(payload.data(), payload.size());
  };

  EXPECT_FALSE(decode({}).ok());
  EXPECT_FALSE(decode({1, 2, 3}).ok());

  std::vector<uint8_t> bad = valid;
  bad[1] = 3;  // priority class out of range
  EXPECT_FALSE(decode(bad).ok());

  bad = valid;
  bad[0] = 5;  // policy override neither 0..2 nor 0xFF
  EXPECT_FALSE(decode(bad).ok());

  bad = valid;
  bad[12] = 0xff;  // value count lies about the bytes present
  EXPECT_FALSE(decode(bad).ok());

  bad = valid;
  bad[8] = 0;  // tenant length 0
  EXPECT_FALSE(decode(bad).ok());

  // Trailing garbage after the declared values is also a malformation.
  bad = valid;
  bad.push_back(0);
  EXPECT_FALSE(decode(bad).ok());
}

TEST(MessagesTest, ScoreResponseRoundTripsFlagsAndScores) {
  ScoreResponse response;
  response.code = StatusCode::kFailedPrecondition;
  response.message = "rate limited by per-tenant QoS";
  response.first_step = 1234;
  response.rejected = true;
  response.contaminated = true;
  response.scores = {0.5, 2.5};
  std::vector<uint8_t> payload;
  EncodeScoreResponse(response, &payload);

  auto decoded = DecodeScoreResponse(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded->message, response.message);
  EXPECT_EQ(decoded->first_step, 1234u);
  EXPECT_TRUE(decoded->rejected);
  EXPECT_TRUE(decoded->contaminated);
  EXPECT_FALSE(decoded->dropped);
  EXPECT_EQ(decoded->scores, response.scores);
  EXPECT_FALSE(decoded->ok());
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kFailedPrecondition);
}

TEST(MessagesTest, CloseRequestRoundTrips) {
  CloseRequest request;
  request.tenant = "tenant-b";
  request.service = 7;
  std::vector<uint8_t> payload;
  EncodeCloseRequest(request, &payload);
  auto decoded = DecodeCloseRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tenant, "tenant-b");
  EXPECT_EQ(decoded->service, 7);
}

TEST(MessagesTest, StatsResponseRoundTrips) {
  std::vector<uint8_t> payload;
  EncodeStatsResponse("serve gen 1 | q 0", &payload);
  auto decoded = DecodeStatsResponse(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "serve gen 1 | q 0");
}

TEST(MessagesTest, PeekScoreRoutingMatchesFullDecode) {
  ScoreRequest request;
  request.tenant = "tenant-route";
  request.service = 2;
  request.priority = 0;
  request.values = {1.0, 2.0, 3.0};
  std::vector<uint8_t> payload;
  EncodeScoreRequest(request, &payload);

  auto routing = PeekScoreRouting(payload.data(), payload.size());
  ASSERT_TRUE(routing.ok());
  EXPECT_EQ(routing->tenant, "tenant-route");
  EXPECT_EQ(routing->priority, 0);

  // The peek still vouches for the value bytes it skips: a count that
  // disagrees with the bytes present must not be forwarded.
  std::vector<uint8_t> bad = payload;
  bad[12] = 0xff;
  EXPECT_FALSE(PeekScoreRouting(bad.data(), bad.size()).ok());
}

// -- pinned hashes ---------------------------------------------------------

TEST(HashTest, Fnv1a64MatchesPinnedVectors) {
  // Standard FNV-1a test vectors: placement must never drift across
  // builds, platforms, or standard libraries.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64(std::string("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64(std::string("foobar")), 0x85944171f73967e8ull);
}

TEST(HashTest, RingHash64SpreadsSequentialTenantNames) {
  // Raw FNV-1a maps "tenant-0".."tenant-63" into one narrow band (the
  // bug that parked every tenant on one backend); the finalized ring
  // hash must spread them across the full 64-bit space. Bucket by the
  // top two bits: all four quadrants must be populated.
  int quadrant[4] = {0, 0, 0, 0};
  for (int k = 0; k < 64; ++k) {
    const uint64_t h = RingHash64("tenant-" + std::to_string(k));
    ++quadrant[h >> 62];
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(quadrant[q], 0) << "empty quadrant " << q;
    EXPECT_LT(quadrant[q], 40) << "clustered quadrant " << q;
  }
  // Deterministic: same digest on every call (and pinned derivation).
  EXPECT_EQ(RingHash64(std::string("tenant-0")),
            RingHash64(std::string("tenant-0")));
  EXPECT_NE(RingHash64(std::string("tenant-0")),
            Fnv1a64(std::string("tenant-0")));
}

}  // namespace
}  // namespace mace::wire
