// Multi-process smoke test for the scale-out serving topology: spawn a
// real mace_router in front of two real mace_serve_backend processes
// (paths injected by CMake), drive pipelined load over loopback, and
// assert the end-to-end contract — every request answered exactly once
// (zero lost, zero duplicated), both backends doing work, and a clean
// SIGTERM teardown with no orphaned processes.

#include <signal.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel_aware_detector.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "core/streaming.h"
#include "net/client.h"
#include "net/spawn.h"
#include "ts/time_series.h"
#include "wire/frame.h"
#include "wire/messages.h"

#ifndef MACE_BACKEND_BIN
#error "MACE_BACKEND_BIN must point at the mace_serve_backend binary"
#endif
#ifndef MACE_ROUTER_BIN
#error "MACE_ROUTER_BIN must point at the mace_router binary"
#endif

namespace mace {
namespace {

using net::Subprocess;

constexpr int kSpawnTimeoutMs = 60000;
constexpr int kTenants = 8;
constexpr size_t kSteps = 48;
constexpr size_t kPipelineWindow = 32;

/// Deterministic two-feature series, the fuzz-harness TinyModel recipe:
/// small enough that fitting + saving stays in test-suite time.
ts::TimeSeries SyntheticSeries(size_t length, double phase) {
  std::vector<std::vector<double>> values;
  values.reserve(length);
  for (size_t t = 0; t < length; ++t) {
    const double x = static_cast<double>(t);
    values.push_back({std::sin(0.7 * x + phase),
                      std::cos(0.3 * x + 2.0 * phase) + 0.01 * x});
  }
  return ts::TimeSeries(std::move(values), {});
}

/// Fits the tiny model once and saves it for every backend to load, so
/// all processes score from identical weights.
std::string SavedModelPath() {
  static const std::string path = [] {
    const std::string file =
        (std::filesystem::temp_directory_path() /
         ("mace_scaleout_smoke_" + std::to_string(::getpid()) + ".model"))
            .string();
    core::MaceConfig config;
    config.window = 8;
    config.train_stride = 2;
    config.score_stride = 4;
    config.num_bases = 3;
    config.time_kernel = 3;
    config.freq_kernel = 3;
    config.hidden_channels = 4;
    config.characterization_channels = 2;
    config.epochs = 1;
    core::MaceDetector detector(config);
    std::vector<ts::ServiceData> services(2);
    for (size_t s = 0; s < services.size(); ++s) {
      services[s].name = "svc" + std::to_string(s);
      services[s].train =
          SyntheticSeries(48, 0.5 * static_cast<double>(s + 1));
      services[s].test =
          SyntheticSeries(24, 0.5 * static_cast<double>(s + 1));
    }
    MACE_CHECK_OK(detector.Fit(services));
    MACE_CHECK_OK(detector.Save(file));
    return file;
  }();
  return path;
}

/// Same recipe for the channel-aware variant (MCHANv1 file): the backend
/// loads it through the same --model flag via the magic-sniffing loader.
std::string SavedChannelModelPath() {
  static const std::string path = [] {
    const std::string file =
        (std::filesystem::temp_directory_path() /
         ("mace_scaleout_smoke_chan_" + std::to_string(::getpid()) +
          ".model"))
            .string();
    channel::ChannelAwareConfig config;
    config.window = 8;
    config.train_stride = 2;
    config.score_stride = 4;
    config.bases_per_channel = 3;
    config.num_patches = 2;
    channel::ChannelAwareDetector detector(config);
    std::vector<ts::ServiceData> services(2);
    for (size_t s = 0; s < services.size(); ++s) {
      services[s].name = "svc" + std::to_string(s);
      services[s].train =
          SyntheticSeries(48, 0.5 * static_cast<double>(s + 1));
      services[s].test =
          SyntheticSeries(24, 0.5 * static_cast<double>(s + 1));
    }
    MACE_CHECK_OK(detector.Fit(services));
    MACE_CHECK_OK(detector.Save(file));
    return file;
  }();
  return path;
}

/// Removes the shared model files once every test is done with them.
class ModelFileCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::remove(SavedModelPath().c_str());
    std::remove(SavedChannelModelPath().c_str());
  }
};
const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new ModelFileCleanup);

std::unique_ptr<Subprocess> SpawnBackendWithModel(const std::string& model,
                                                  uint16_t* port) {
  auto spawned = Subprocess::Spawn({MACE_BACKEND_BIN, "--model", model,
                                    "--shards", "1", "--queue", "1024"});
  MACE_CHECK_OK(spawned.status());
  auto listening = spawned.value()->WaitForListeningPort(kSpawnTimeoutMs);
  MACE_CHECK_OK(listening.status());
  *port = *listening;
  return std::move(spawned).value();
}

std::unique_ptr<Subprocess> SpawnBackend(uint16_t* port) {
  return SpawnBackendWithModel(SavedModelPath(), port);
}

TEST(ScaleoutSmokeTest, RouterWithTwoBackendsEndToEnd) {
  uint16_t port_a = 0;
  uint16_t port_b = 0;
  auto backend_a = SpawnBackend(&port_a);
  auto backend_b = SpawnBackend(&port_b);
  auto router = Subprocess::Spawn(
      {MACE_ROUTER_BIN, "--backends",
       "127.0.0.1:" + std::to_string(port_a) + ",127.0.0.1:" +
           std::to_string(port_b)});
  ASSERT_TRUE(router.ok()) << router.status().message();
  auto router_port = (*router)->WaitForListeningPort(kSpawnTimeoutMs);
  ASSERT_TRUE(router_port.ok()) << router_port.status().message();

  auto client = net::WireClient::Connect("127.0.0.1", *router_port);
  ASSERT_TRUE(client.ok()) << client.status().message();
  MACE_CHECK_OK((*client)->Ping());

  // Pipelined load: every request id must come back exactly once.
  const auto observations = SyntheticSeries(kSteps, 0.25).values();
  std::map<uint64_t, int> outstanding;  // request id -> tenant
  uint64_t responses = 0;
  uint64_t duplicated = 0;
  uint64_t errors = 0;
  uint64_t scores_seen = 0;

  auto drain_one = [&]() {
    auto frame = (*client)->NextResponse();
    MACE_CHECK_OK(frame.status());
    ASSERT_EQ(frame->type, wire::FrameType::kScoreResponse);
    const auto erased = outstanding.erase(frame->request_id);
    if (erased == 0) ++duplicated;
    auto decoded = wire::DecodeScoreResponse(frame->payload.data(),
                                             frame->payload.size());
    MACE_CHECK_OK(decoded.status());
    if (!decoded->ok()) ++errors;
    scores_seen += decoded->scores.size();
    ++responses;
  };

  for (size_t t = 0; t < kSteps; ++t) {
    for (int k = 0; k < kTenants; ++k) {
      wire::ScoreRequest request;
      request.tenant = "smoke-" + std::to_string(k);
      request.service = k % 2;
      request.values = observations[t];
      auto id = (*client)->SendScore(request);
      MACE_CHECK_OK(id.status());
      outstanding.emplace(*id, k);
      while (outstanding.size() >= kPipelineWindow) drain_one();
    }
  }
  while (!outstanding.empty()) drain_one();

  EXPECT_EQ(responses, kTenants * kSteps);
  EXPECT_EQ(duplicated, 0u) << "a response id arrived twice";
  EXPECT_EQ(errors, 0u);
  EXPECT_GT(scores_seen, 0u) << "no score batch ever completed";

  // The router's stats line confirms both backends stayed alive and the
  // in-flight table fully drained.
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("backends 2/2"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("inflight 0"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("backend_errors 0"), std::string::npos) << *stats;

  // Clean teardown: SIGTERM within the grace window, exit code 0 (the
  // processes shut their servers down; nothing needed the SIGKILL
  // escalation), and nothing left running.
  router->get()->KillAndReap();
  backend_a->KillAndReap();
  backend_b->KillAndReap();
  EXPECT_FALSE(router->get()->Running());
  EXPECT_FALSE(backend_a->Running());
  EXPECT_FALSE(backend_b->Running());
  ASSERT_TRUE(router->get()->exit_code().has_value())
      << "router needed SIGKILL — unclean shutdown";
  EXPECT_EQ(*router->get()->exit_code(), 0);
  ASSERT_TRUE(backend_a->exit_code().has_value())
      << "backend needed SIGKILL — unclean shutdown";
  EXPECT_EQ(*backend_a->exit_code(), 0);
  ASSERT_TRUE(backend_b->exit_code().has_value());
  EXPECT_EQ(*backend_b->exit_code(), 0);
}

// Channel-aware variant through the full process boundary: a backend
// loading the MCHANv1 file must return, over the socket, exactly the
// scores an in-process StreamingScorer produces from the same file —
// the serving stack adds no variant-specific drift.
TEST(ScaleoutSmokeTest, ChannelModelScoresBitIdenticalAcrossTheWire) {
  auto loaded = channel::ChannelAwareDetector::Load(SavedChannelModelPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const ts::TimeSeries stream = SyntheticSeries(24, 0.25);

  std::vector<double> expected;
  {
    auto scorer = core::StreamingScorer::Create(&*loaded, /*service=*/1);
    ASSERT_TRUE(scorer.ok());
    for (size_t t = 0; t < stream.length(); ++t) {
      auto out = scorer->Push(stream.values()[t]);
      ASSERT_TRUE(out.ok());
      expected.insert(expected.end(), out->begin(), out->end());
    }
    const auto tail = scorer->Finish();
    expected.insert(expected.end(), tail.begin(), tail.end());
  }
  ASSERT_FALSE(expected.empty());

  uint16_t port = 0;
  auto backend = SpawnBackendWithModel(SavedChannelModelPath(), &port);
  auto client = net::WireClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().message();

  std::vector<double> served;
  for (size_t t = 0; t < stream.length(); ++t) {
    wire::ScoreRequest request;
    request.tenant = "chan";
    request.service = 1;
    request.values = stream.values()[t];
    auto response = (*client)->Score(request);
    ASSERT_TRUE(response.ok()) << response.status().message();
    ASSERT_TRUE(response->ok()) << response->message;
    served.insert(served.end(), response->scores.begin(),
                  response->scores.end());
  }
  auto closed = (*client)->CloseSession("chan", 1);
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(closed->ok()) << closed->message;
  served.insert(served.end(), closed->scores.begin(),
                closed->scores.end());

  ASSERT_EQ(served.size(), expected.size());
  for (size_t t = 0; t < served.size(); ++t) {
    ASSERT_EQ(served[t], expected[t]) << "step " << t;
  }

  backend->KillAndReap();
  ASSERT_TRUE(backend->exit_code().has_value());
  EXPECT_EQ(*backend->exit_code(), 0);
}

TEST(ScaleoutSmokeTest, BackendAloneAnswersDirectClient) {
  uint16_t port = 0;
  auto backend = SpawnBackend(&port);
  auto client = net::WireClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().message();

  const auto observations = SyntheticSeries(16, 0.25).values();
  for (const auto& observation : observations) {
    wire::ScoreRequest request;
    request.tenant = "solo";
    request.service = 0;
    request.values = observation;
    auto response = (*client)->Score(request);
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_TRUE(response->ok()) << response->message;
  }
  auto closed = (*client)->CloseSession("solo", 0);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->ok());

  backend->KillAndReap();
  ASSERT_TRUE(backend->exit_code().has_value());
  EXPECT_EQ(*backend->exit_code(), 0);
}

}  // namespace
}  // namespace mace
