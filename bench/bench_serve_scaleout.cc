// Scale-out serving under sustained load: spawns real mace_serve_backend
// processes behind the mace_router fan-in and replays a pipelined
// multi-tenant workload through loopback sockets — the full MWIREv1 path
// a remote fleet would exercise (frame encode → router ring lookup →
// backend epoll front door → sharded pool → response fan-in).
//
// Reported per backend count (1 / 2 / 4): sustained obs/s, p50/p99/p999
// round-trip latency, shed + rejected counts, and a zero-lost /
// zero-duplicate response check. Alongside: the in-process baseline (the
// same canonical pool driven without sockets) and the direct-socket
// single-backend run that isolates router overhead.
//
// Two honesty notes, both recorded in BENCH_serve.json:
//   - hardware_cores: on a single-core host the backend processes time-
//     slice one CPU, so scale-out throughput cannot exceed the direct
//     run; the scaling table is still emitted (the topology is real) but
//     the *hard* acceptance check here is bit-identity, not speedup.
//   - bit_identical: the same tenant streams scored through
//     router + socket + backend process and through a ServeFrontend in
//     this process must match bit for bit (raw IEEE doubles via memcmp).
//     Every process loads the same saved model file, so any divergence
//     is a wire or routing bug, and the bench aborts on it.
//
// Emits the combined BENCH_serve.json (bench "serve_scaleout"); the
// in-process-only trajectory lives in bench_serve_throughput --json-out.

#include <cstdio>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "eval/profiler.h"
#include "net/client.h"
#include "net/spawn.h"
#include "serve/frontend.h"
#include "ts/profiles.h"

#ifndef MACE_BACKEND_BIN
#error "MACE_BACKEND_BIN must point at the mace_serve_backend binary"
#endif
#ifndef MACE_ROUTER_BIN
#error "MACE_ROUTER_BIN must point at the mace_router binary"
#endif

namespace {

using mace::net::Subprocess;
using Clock = std::chrono::steady_clock;

// The pinned canonical configuration; every knob lands in the JSON.
constexpr int kTenants = 64;
constexpr size_t kSteps = 400;
constexpr int kFittedServices = 4;
constexpr int kBackendShards = 2;
constexpr int kQueueCapacity = 4096;
constexpr int kClientConnections = 2;
constexpr size_t kPipelineWindow = 64;
constexpr int kSpawnTimeoutMs = 60000;
// Bit-identity probe: fresh tenants streamed serially through both paths.
constexpr int kBitTenants = 8;
constexpr size_t kBitSteps = 160;

const char kModelPath[] = "bench_scaleout_model.tmp";

struct LoadResult {
  double seconds = 0.0;
  std::vector<double> latencies_us;
  uint64_t responses = 0;
  uint64_t rejected = 0;  ///< QoS / backpressure refusals (flag bit)
  uint64_t shed = 0;      ///< pool overload drops (flag bit)
  uint64_t errors = 0;    ///< non-OK responses that are neither of those
  uint64_t unmatched = 0; ///< response ids never sent, or seen twice
  uint64_t lost = 0;      ///< requests that never got a response
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(q * sorted.size()));
  return sorted[idx];
}

/// One client thread: pipelined score frames over its own connection,
/// its share of the tenants, bounded outstanding window. Every request
/// id is tracked until its response returns, so lost and duplicated
/// responses are counted, not assumed away.
void ClientThread(uint16_t port, int thread_index,
                  const mace::ts::Dataset& dataset, LoadResult* total,
                  std::mutex* mu) {
  using namespace mace;
  auto connected = net::WireClient::Connect("127.0.0.1", port);
  MACE_CHECK_OK(connected.status());
  auto& client = *connected.value();

  LoadResult local;
  std::unordered_map<uint64_t, Clock::time_point> outstanding;
  outstanding.reserve(kPipelineWindow * 2);

  auto drain_one = [&]() {
    auto frame = client.NextResponse();
    MACE_CHECK_OK(frame.status());
    MACE_CHECK(frame->type == wire::FrameType::kScoreResponse)
        << "unexpected frame type "
        << static_cast<int>(frame->type);
    const auto now = Clock::now();
    auto it = outstanding.find(frame->request_id);
    if (it == outstanding.end()) {
      ++local.unmatched;
    } else {
      local.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(now - it->second)
              .count());
      outstanding.erase(it);
      ++local.responses;
    }
    auto response = wire::DecodeScoreResponse(frame->payload.data(),
                                              frame->payload.size());
    MACE_CHECK_OK(response.status());
    if (response->rejected) {
      ++local.rejected;
    } else if (response->dropped) {
      ++local.shed;
    } else if (!response->ok()) {
      ++local.errors;
    }
  };

  for (size_t t = 0; t < kSteps; ++t) {
    for (int k = thread_index; k < kTenants; k += kClientConnections) {
      const int service = k % kFittedServices;
      wire::ScoreRequest request;
      request.tenant = "load-" + std::to_string(k);
      request.service = service;
      request.values =
          dataset.services[static_cast<size_t>(service)].test.values()[t];
      const auto sent = Clock::now();
      auto id = client.SendScore(request);
      MACE_CHECK_OK(id.status());
      outstanding.emplace(*id, sent);
      while (outstanding.size() >= kPipelineWindow) drain_one();
    }
  }
  while (!outstanding.empty()) drain_one();
  local.lost = outstanding.size();

  std::lock_guard<std::mutex> lock(*mu);
  total->responses += local.responses;
  total->rejected += local.rejected;
  total->shed += local.shed;
  total->errors += local.errors;
  total->unmatched += local.unmatched;
  total->lost += local.lost;
  total->latencies_us.insert(total->latencies_us.end(),
                             local.latencies_us.begin(),
                             local.latencies_us.end());
}

LoadResult RunLoad(uint16_t port, const mace::ts::Dataset& dataset) {
  LoadResult total;
  std::mutex mu;
  mace::eval::StopWatch watch;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClientConnections; ++c) {
    threads.emplace_back(ClientThread, port, c, std::cref(dataset), &total,
                         &mu);
  }
  for (auto& thread : threads) thread.join();
  total.seconds = watch.ElapsedSeconds();
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  return total;
}

std::unique_ptr<Subprocess> SpawnBackend(uint16_t* port) {
  auto spawned = Subprocess::Spawn(
      {MACE_BACKEND_BIN, "--model", kModelPath, "--shards",
       std::to_string(kBackendShards), "--queue",
       std::to_string(kQueueCapacity), "--policy", "block"});
  MACE_CHECK_OK(spawned.status());
  auto listening = spawned.value()->WaitForListeningPort(kSpawnTimeoutMs);
  MACE_CHECK_OK(listening.status());
  *port = *listening;
  return std::move(spawned).value();
}

struct Topology {
  std::vector<std::unique_ptr<Subprocess>> backends;
  std::unique_ptr<Subprocess> router;
  uint16_t router_port = 0;

  void Teardown() {
    // Router first so no client-facing socket outlives its backends.
    if (router) router->KillAndReap();
    for (auto& backend : backends) backend->KillAndReap();
    backends.clear();
    router.reset();
  }
};

Topology SpawnTopology(int num_backends) {
  Topology topo;
  std::string backend_list;
  for (int b = 0; b < num_backends; ++b) {
    uint16_t port = 0;
    topo.backends.push_back(SpawnBackend(&port));
    if (b > 0) backend_list += ',';
    backend_list += "127.0.0.1:" + std::to_string(port);
  }
  auto spawned =
      Subprocess::Spawn({MACE_ROUTER_BIN, "--backends", backend_list});
  MACE_CHECK_OK(spawned.status());
  auto listening = spawned.value()->WaitForListeningPort(kSpawnTimeoutMs);
  MACE_CHECK_OK(listening.status());
  topo.router_port = *listening;
  topo.router = std::move(spawned).value();
  return topo;
}

/// Streams kBitTenants fresh tenant sessions through `score_step` and
/// returns each tenant's concatenated score sequence — the common shape
/// of both sides of the bit-identity check.
template <typename ScoreStep>
std::vector<std::vector<double>> CollectScores(
    const mace::ts::Dataset& dataset, ScoreStep&& score_step) {
  std::vector<std::vector<double>> per_tenant(
      static_cast<size_t>(kBitTenants));
  for (size_t t = 0; t < kBitSteps; ++t) {
    for (int k = 0; k < kBitTenants; ++k) {
      const int service = k % kFittedServices;
      score_step(
          "bit-" + std::to_string(k), service,
          dataset.services[static_cast<size_t>(service)].test.values()[t],
          &per_tenant[static_cast<size_t>(k)]);
    }
  }
  return per_tenant;
}

bool BitIdentical(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (!a[i].empty() &&
        std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct RunRow {
  int backends = 0;
  double obs_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
};

RunRow Summarize(int backends, const LoadResult& result) {
  const uint64_t expected =
      static_cast<uint64_t>(kTenants) * static_cast<uint64_t>(kSteps);
  MACE_CHECK(result.lost == 0 && result.unmatched == 0 &&
             result.responses == expected)
      << "response accounting broken: " << result.responses << " of "
      << expected << " (lost " << result.lost << ", unmatched "
      << result.unmatched << ")";
  MACE_CHECK(result.errors == 0)
      << result.errors << " scoring errors through the wire";
  RunRow row;
  row.backends = backends;
  row.obs_per_sec = static_cast<double>(result.responses) / result.seconds;
  row.p50_us = Percentile(result.latencies_us, 0.50);
  row.p99_us = Percentile(result.latencies_us, 0.99);
  row.p999_us = Percentile(result.latencies_us, 0.999);
  row.shed = result.shed;
  row.rejected = result.rejected;
  return row;
}

}  // namespace

int main() {
  using namespace mace;

  const unsigned cores = std::thread::hardware_concurrency();

  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = kFittedServices;
  profile.test_length = std::max(kSteps, kBitSteps);
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig config;
  config.epochs = 2;
  config.score_stride = config.window;
  config.num_bases = 12;
  auto model = std::make_shared<core::MaceDetector>(config);
  std::printf("fitting the shared model (%d services)...\n",
              kFittedServices);
  MACE_CHECK_OK(model->Fit(dataset.services));
  MACE_CHECK_OK(model->Save(kModelPath));

  std::printf(
      "Scale-out serving — %d tenants x %zu steps, %d client "
      "connections, pipeline window %zu, backends x%d shards, "
      "policy=block (%u hardware core%s)\n\n",
      kTenants, kSteps, kClientConnections, kPipelineWindow,
      kBackendShards, cores, cores == 1 ? "" : "s");

  // In-process baseline: the identical pool config without any sockets.
  double in_process_obs_per_sec = 0.0;
  {
    serve::ServeConfig serve_config;
    serve_config.num_shards = kBackendShards;
    serve_config.queue_capacity = kQueueCapacity;
    auto frontend = serve::ServeFrontend::Create(model, serve_config);
    MACE_CHECK_OK(frontend.status());
    eval::StopWatch watch;
    for (size_t t = 0; t < kSteps; ++t) {
      for (int k = 0; k < kTenants; ++k) {
        const int service = k % kFittedServices;
        auto f = (*frontend)->Submit(
            "load-" + std::to_string(k), service,
            dataset.services[static_cast<size_t>(service)].test.values()[t]);
        MACE_CHECK_OK(f.status());
      }
    }
    (*frontend)->Flush();
    const double seconds = watch.ElapsedSeconds();
    const serve::ShardStats totals = (*frontend)->Stats().Totals();
    MACE_CHECK(totals.scored_steps == kSteps * kTenants);
    in_process_obs_per_sec =
        static_cast<double>(kSteps * kTenants) / seconds;
    std::printf("%-22s %10.0f obs/s\n", "in-process baseline:",
                in_process_obs_per_sec);
  }

  // Direct socket, one backend, no router: isolates wire + epoll cost;
  // the router-1 run against it isolates the router hop.
  RunRow direct;
  {
    uint16_t port = 0;
    auto backend = SpawnBackend(&port);
    direct = Summarize(1, RunLoad(port, dataset));
    backend->KillAndReap();
    std::printf("%-22s %10.0f obs/s   p99 %.0f us\n",
                "direct socket (1):", direct.obs_per_sec, direct.p99_us);
  }

  std::printf("\n%8s %12s %10s %10s %10s %8s %8s\n", "backends", "obs/s",
              "p50_us", "p99_us", "p999_us", "shed", "rejected");
  std::vector<RunRow> rows;
  for (int backends : {1, 2, 4}) {
    Topology topo = SpawnTopology(backends);
    RunRow row = Summarize(backends, RunLoad(topo.router_port, dataset));
    topo.Teardown();
    rows.push_back(row);
    std::printf("%8d %12.0f %10.0f %10.0f %10.0f %8llu %8llu\n",
                row.backends, row.obs_per_sec, row.p50_us, row.p99_us,
                row.p999_us, static_cast<unsigned long long>(row.shed),
                static_cast<unsigned long long>(row.rejected));
  }

  const double router_overhead =
      direct.obs_per_sec > 0.0
          ? 1.0 - rows[0].obs_per_sec / direct.obs_per_sec
          : 0.0;
  const double speedup_4x =
      rows[0].obs_per_sec > 0.0 ? rows[2].obs_per_sec / rows[0].obs_per_sec
                                : 0.0;

  // Bit-identity: the hard check. Same tenants, same observations, same
  // saved model — once through router + socket + backend process, once
  // through a ServeFrontend here; every score double must match bitwise.
  std::printf("\nbit-identity probe: %d tenants x %zu steps...\n",
              kBitTenants, kBitSteps);
  Topology topo = SpawnTopology(2);
  auto connected = net::WireClient::Connect("127.0.0.1", topo.router_port);
  MACE_CHECK_OK(connected.status());
  auto wire_scores = CollectScores(
      dataset, [&](const std::string& tenant, int service,
                   const std::vector<double>& values,
                   std::vector<double>* out) {
        wire::ScoreRequest request;
        request.tenant = tenant;
        request.service = service;
        request.values = values;
        auto response = connected.value()->Score(request);
        MACE_CHECK_OK(response.status());
        MACE_CHECK_OK(response->ToStatus());
        out->insert(out->end(), response->scores.begin(),
                    response->scores.end());
      });
  connected.value().reset();
  topo.Teardown();

  auto reloaded = core::MaceDetector::Load(kModelPath);
  MACE_CHECK_OK(reloaded.status());
  auto direct_model =
      std::make_shared<core::MaceDetector>(std::move(reloaded).value());
  serve::ServeConfig serve_config;
  serve_config.num_shards = kBackendShards;
  auto frontend = serve::ServeFrontend::Create(direct_model, serve_config);
  MACE_CHECK_OK(frontend.status());
  auto direct_scores = CollectScores(
      dataset, [&](const std::string& tenant, int service,
                   const std::vector<double>& values,
                   std::vector<double>* out) {
        auto f = (*frontend)->Submit(tenant, service, values);
        MACE_CHECK_OK(f.status());
        serve::ScoreBatch batch = f->get();
        MACE_CHECK_OK(batch.status);
        out->insert(out->end(), batch.scores.begin(), batch.scores.end());
      });
  const bool bit_identical = BitIdentical(wire_scores, direct_scores);
  MACE_CHECK(bit_identical)
      << "scores through router+socket diverge from direct ServeFrontend";
  std::printf("bit-identity: OK (every score matches memcmp-exact)\n");

  {
    std::ofstream out("BENCH_serve.json", std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"serve_scaleout\",\n"
        << "  \"hardware_cores\": " << cores << ",\n"
        << "  \"config\": {\n"
        << "    \"tenants\": " << kTenants << ",\n"
        << "    \"steps_per_tenant\": " << kSteps << ",\n"
        << "    \"fitted_services\": " << kFittedServices << ",\n"
        << "    \"policy\": \"block\",\n"
        << "    \"backend_shards\": " << kBackendShards << ",\n"
        << "    \"queue_capacity\": " << kQueueCapacity << ",\n"
        << "    \"client_connections\": " << kClientConnections << ",\n"
        << "    \"pipeline_window\": " << kPipelineWindow << ",\n"
        << "    \"qos\": \"off\",\n"
        << "    \"epochs\": " << config.epochs << ",\n"
        << "    \"score_stride\": " << config.score_stride << ",\n"
        << "    \"num_bases\": " << config.num_bases << "\n"
        << "  },\n"
        << "  \"in_process\": { \"obs_per_sec\": " << in_process_obs_per_sec
        << " },\n"
        << "  \"direct_socket\": { \"obs_per_sec\": " << direct.obs_per_sec
        << ", \"p99_us\": " << direct.p99_us << ", \"p999_us\": "
        << direct.p999_us << " },\n"
        << "  \"scaleout\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const RunRow& row = rows[i];
      out << "    { \"backends\": " << row.backends
          << ", \"obs_per_sec\": " << row.obs_per_sec
          << ", \"p50_us\": " << row.p50_us
          << ", \"p99_us\": " << row.p99_us
          << ", \"p999_us\": " << row.p999_us
          << ", \"shed\": " << row.shed
          << ", \"rejected\": " << row.rejected << " }"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"router_overhead_fraction\": " << router_overhead << ",\n"
        << "  \"speedup_4_vs_1\": " << speedup_4x << ",\n"
        << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << "\n"
        << "}\n";
  }
  std::remove(kModelPath);
  std::printf(
      "\nrouter overhead %.1f%%, 4-vs-1 backend speedup %.2fx "
      "(%u-core host) — BENCH_serve.json written\n",
      router_overhead * 100.0, speedup_4x, cores);
  return 0;
}
