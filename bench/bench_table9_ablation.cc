// Regenerates Table IX: remove each MACE module in turn.
//  - context-aware DFT & IDFT -> replaced by the vanilla full spectrum
//  - dualistic convolution (F) -> standard convolution in the autoencoder
//  - dualistic convolution (T) -> standard (averaging) convolution in
//    stage 1 (the paper's gamma = 1 degenerate case)
//  - frequency characterization -> module removed
//  - pattern extraction -> vanilla DFT and no frequency characterization

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const std::vector<ts::DatasetProfile> profiles = {
      ts::SmdProfile(), ts::Jd1Profile(), ts::Jd2Profile(),
      ts::SmapProfile()};

  struct Variant {
    std::string name;
    void (*apply)(core::MaceConfig*);
  };
  const std::vector<Variant> variants = {
      {"- ctx DFT&IDFT",
       [](core::MaceConfig* c) { c->use_context_aware_dft = false; }},
      {"- dualistic(F)",
       [](core::MaceConfig* c) { c->use_dualistic_freq = false; }},
      {"- dualistic(T)",
       [](core::MaceConfig* c) {
         // gamma -> 1: the dualistic conv degenerates into a standard
         // smoothing convolution (Section V-E of the paper).
         c->gamma_t = 1.0;
       }},
      {"- freq char",
       [](core::MaceConfig* c) { c->use_freq_characterization = false; }},
      {"- pattern extr",
       [](core::MaceConfig* c) { c->use_pattern_extraction = false; }},
      {"MACE (full)", [](core::MaceConfig*) {}},
  };

  std::vector<std::string> names;
  for (const auto& p : profiles) names.push_back(p.name);
  benchutil::MetricsTable table(names);

  for (const Variant& variant : variants) {
    std::vector<eval::PrMetrics> per_dataset;
    for (const ts::DatasetProfile& profile : profiles) {
      const ts::Dataset dataset = ts::GenerateDataset(profile);
      const std::vector<ts::ServiceData> group =
          ts::ServiceGroup(dataset, 0);
      core::MaceConfig config = benchutil::MaceConfigFor(profile.name);
      variant.apply(&config);
      core::MaceDetector detector(config);
      Result<eval::PrMetrics> avg =
          benchutil::EvaluateUnified(&detector, group);
      MACE_CHECK_OK(avg.status());
      per_dataset.push_back(*avg);
      std::fprintf(stderr, "[table9] %s on %s: F1=%.3f\n",
                   variant.name.c_str(), profile.name.c_str(), avg->f1);
    }
    table.AddRow(variant.name, per_dataset);
  }

  std::printf("Table IX — ablation: MACE with modules removed\n");
  table.Print();
  return 0;
}
