// Training-engine throughput: the historical per-window SGD loop
// (batch_size=1) vs the data-parallel minibatch trainer, single-threaded
// and on an 8-thread pool. All runs share one seed and one dataset, and
// the batched runs' epoch losses are cross-checked bit-for-bit against
// each other before any ratio is reported — a trainer that changes the
// numbers is not a faster trainer, it is a different one. Emits
// BENCH_fit.json for trajectory tracking.
//
// Per-epoch time comes from the mace_fit_epoch_seconds histogram (deltas
// around each Fit), so preprocessing and pool spin-up are excluded and
// the ratio is pure training-loop arithmetic. The minibatch win is
// real even on one core: stacked DFT/IDFT/decoder matmuls, one Backward
// graph walk and one Adam step per minibatch instead of per window.

#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "obs/metrics.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;

  constexpr int kEpochs = 2;
  constexpr int kPasses = 4;
  constexpr int kBatch = 96;
  constexpr int kThreads = 8;

  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 2;
  profile.train_length = 840;
  profile.test_length = 64;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig seed_config;  // the pre-minibatch trainer, bit for bit
  seed_config.epochs = kEpochs;
  seed_config.batch_size = 1;
  seed_config.fit_threads = 1;
  core::MaceConfig batched_config = seed_config;
  batched_config.batch_size = kBatch;
  core::MaceConfig threaded_config = batched_config;
  threaded_config.fit_threads = kThreads;

  obs::Histogram* epoch_hist = obs::Metrics().GetHistogram(
      "mace_fit_epoch_seconds", "Wall-clock duration of one training epoch");

  struct Run {
    const char* label;
    const core::MaceConfig* config;
    double epoch_sec = 0.0;  ///< best (min) per-epoch time across passes
    std::vector<double> losses;
  };
  Run runs[] = {{"per-window SGD (seed)", &seed_config},
                {"minibatch(96), 1 thread", &batched_config},
                {"minibatch(96), 8 threads", &threaded_config}};

  // Runs alternate within each pass, so machine-wide disturbances hit
  // every run in the same proportion, and each run reports its best pass:
  // on a shared box the minimum is the measurement least polluted by
  // noisy neighbours, and every pass retrains to bit-identical losses, so
  // all passes time exactly the same arithmetic.
  for (int pass = 0; pass < kPasses; ++pass) {
    for (Run& run : runs) {
      core::MaceDetector detector(*run.config);
      const double before = epoch_hist->Sum();
      MACE_CHECK_OK(detector.Fit(dataset.services));
      const double pass_epoch_sec =
          (epoch_hist->Sum() - before) / static_cast<double>(kEpochs);
      if (pass == 0 || pass_epoch_sec < run.epoch_sec) {
        run.epoch_sec = pass_epoch_sec;
      }
      if (pass == 0) {
        run.losses = detector.epoch_losses();
      } else {
        // One seed => every pass retrains to the exact same losses.
        MACE_CHECK(run.losses == detector.epoch_losses())
            << run.label << " diverged across passes";
      }
    }
  }

  // The determinism contract: thread count must not move a single bit.
  MACE_CHECK(runs[1].losses == runs[2].losses)
      << "fit_threads=8 diverged from fit_threads=1";

  std::printf("Parallel fit — %d services, train length %zu, %d epochs\n",
              profile.num_services, profile.train_length, kEpochs);
  std::printf("%-28s %14s %10s\n", "trainer", "sec/epoch", "speedup");
  for (const Run& run : runs) {
    std::printf("%-28s %14.4f %9.2fx\n", run.label, run.epoch_sec,
                runs[0].epoch_sec / run.epoch_sec);
  }

  const double batched_speedup = runs[0].epoch_sec / runs[1].epoch_sec;
  const double threaded_speedup = runs[0].epoch_sec / runs[2].epoch_sec;
  {
    std::ofstream out("BENCH_fit.json", std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"fit_parallel\",\n"
        << "  \"config\": {\n"
        << "    \"services\": " << profile.num_services << ",\n"
        << "    \"train_length\": " << profile.train_length << ",\n"
        << "    \"epochs\": " << kEpochs << ",\n"
        << "    \"batch_size\": " << kBatch << ",\n"
        << "    \"fit_threads\": " << kThreads << ",\n"
        << "    \"passes\": " << kPasses << "\n"
        << "  },\n"
        << "  \"seed_epoch_sec\": " << runs[0].epoch_sec << ",\n"
        << "  \"batched_epoch_sec\": " << runs[1].epoch_sec << ",\n"
        << "  \"threaded_epoch_sec\": " << runs[2].epoch_sec << ",\n"
        << "  \"batched_speedup\": " << batched_speedup << ",\n"
        << "  \"threaded_speedup\": " << threaded_speedup << ",\n"
        << "  \"losses_bit_identical\": true\n"
        << "}\n";
  }
  std::printf("wrote BENCH_fit.json\n");
  return 0;
}
