// Regenerates Table V: one unified model per group of 10 services, MACE vs
// all neural baselines, on the SMD / J-D1 / J-D2 / SMAP profiles.
// JumpStarter (Signal-PCA) is excluded as in the paper — multi-pattern
// unified training is not applicable to a signal-processing method.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const std::vector<ts::DatasetProfile> profiles = {
      ts::SmdProfile(), ts::Jd1Profile(), ts::Jd2Profile(),
      ts::SmapProfile()};

  std::vector<std::string> names;
  for (const auto& p : profiles) names.push_back(p.name);
  benchutil::MetricsTable table(names);

  std::vector<std::string> methods = baselines::NeuralBaselineNames();
  methods.push_back("MACE");

  for (const std::string& method : methods) {
    std::vector<eval::PrMetrics> per_dataset;
    for (const ts::DatasetProfile& profile : profiles) {
      const ts::Dataset dataset = ts::GenerateDataset(profile);
      const std::vector<ts::ServiceData> group =
          ts::ServiceGroup(dataset, /*group=*/0);
      auto detector = benchutil::MakeBenchDetector(method, profile.name);
      Result<eval::PrMetrics> avg =
          benchutil::EvaluateUnified(detector.get(), group);
      MACE_CHECK_OK(avg.status());
      per_dataset.push_back(*avg);
      std::fprintf(stderr, "[table5] %s on %s: F1=%.3f\n", method.c_str(),
                   profile.name.c_str(), avg->f1);
    }
    table.AddRow(method, per_dataset);
  }

  std::printf(
      "Table V — unified model per group of 10 services "
      "(point-adjusted best-F1)\n");
  table.Print();
  return 0;
}
