// Regenerates Table VII: the MC dataset (cloud-provider monitoring with
// substantial point anomalies); baselines tailored per service, MACE
// unified.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const ts::DatasetProfile profile = ts::McProfile();
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  const std::vector<ts::ServiceData> group = ts::ServiceGroup(dataset, 0);

  std::printf(
      "Table VII — MC dataset (tailored baselines vs unified MACE)\n");
  std::printf("%-14s %10s %10s %10s\n", "method", "precision", "recall",
              "f1");

  std::vector<std::string> methods = baselines::AllBaselineNames();
  for (const std::string& method : methods) {
    Result<eval::PrMetrics> avg = benchutil::EvaluateTailored(
        [&] { return benchutil::MakeBenchDetector(method, profile.name); },
        group);
    MACE_CHECK_OK(avg.status());
    std::printf("%-14s %10.3f %10.3f %10.3f\n", method.c_str(),
                avg->precision, avg->recall, avg->f1);
  }
  auto mace_detector = benchutil::MakeBenchDetector("MACE", profile.name);
  Result<eval::PrMetrics> mace_avg =
      benchutil::EvaluateUnified(mace_detector.get(), group);
  MACE_CHECK_OK(mace_avg.status());
  std::printf("%-14s %10.3f %10.3f %10.3f\n", "MACE (unified)",
              mace_avg->precision, mace_avg->recall, mace_avg->f1);
  std::printf(
      "\npaper: MACE 0.941 F1 with a unified model vs tailored baselines "
      "(best baseline AnomalyTransformer 0.923)\n");
  return 0;
}
