// Regenerates Fig 6(a): training time, inference time and (estimated)
// training memory of every method on one SMD group. Absolute numbers are
// machine-specific; the paper's claim is relative: MACE trains about as
// fast as a plain VAE while the recurrent baseline is the slowest.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/profiler.h"

int main() {
  using namespace mace;
  const ts::DatasetProfile profile = ts::SmdProfile();
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  const std::vector<ts::ServiceData> group = ts::ServiceGroup(dataset, 0);

  std::vector<std::string> methods = baselines::NeuralBaselineNames();
  methods.push_back("Signal-PCA");
  methods.push_back("MACE");

  std::vector<eval::ResourceUsage> rows;
  for (const std::string& method : methods) {
    auto detector = benchutil::MakeBenchDetector(method, "SMD");
    eval::ResourceUsage usage;
    usage.method = method;

    eval::StopWatch train_watch;
    MACE_CHECK_OK(detector->Fit(group));
    usage.train_seconds = train_watch.ElapsedSeconds();

    eval::StopWatch infer_watch;
    for (size_t s = 0; s < group.size(); ++s) {
      auto scores = detector->Score(static_cast<int>(s), group[s].test);
      MACE_CHECK_OK(scores.status());
    }
    usage.infer_seconds = infer_watch.ElapsedSeconds() /
                          static_cast<double>(group.size());
    usage.parameter_count = detector->ParameterCount();
    usage.memory_bytes = eval::EstimateTrainingMemoryBytes(
        detector->ParameterCount(), detector->PeakActivationElements());
    rows.push_back(usage);
    std::fprintf(stderr, "[fig6a] %s done\n", method.c_str());
  }

  std::printf(
      "Fig 6(a) — time and memory on one SMD group (10 services, %d "
      "epochs)\n",
      benchutil::DefaultOptions().epochs);
  std::printf("%s", eval::FormatUsageTable(rows).c_str());
  std::printf(
      "\npaper: MACE's training time is competitive with the simplest "
      "methods (VAE/ProS) and ~4x faster than heavy baselines; the "
      "recurrent family is the slowest\n");
  // Per-stage attribution of MACE's share of the time above; set
  // MACE_METRICS_JSON=<path> to also get the raw histograms as JSON.
  benchutil::PrintStageTimingSummary();
  return 0;
}
