// Validates Theorem 1 empirically: for Gaussian amplitude windows, the gap
// between the dualistic-convolution latent and the original spectrum is
// (i) below the closed-form upper bound and (ii) increasing in the
// amplitude standard deviation nu (so anomalous, high-variance spectra are
// harder to reconstruct).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/math_utils.h"
#include "core/dualistic_conv.h"

int main() {
  using namespace mace;
  const int n = 5;          // kernel length
  const double gamma = 7.0;
  const double sigma = 5.0;
  const double mu = 1.0;

  std::printf(
      "Theorem 1 — Monte-Carlo gap vs the closed-form upper bound "
      "(n=%d, gamma=%.0f, mu=%.1f)\n",
      n, gamma, mu);
  std::printf("%8s %14s %14s %8s\n", "nu", "measured gap", "upper bound",
              "holds");

  Rng rng(123);
  for (double nu : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    // Measured: E sum_j |DualisticConv(A) - A_j| over Gaussian windows.
    double measured = 0.0;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<double> amps(n);
      for (double& a : amps) a = rng.Gaussian(mu, nu);
      const auto latent = core::DualisticConvolve(
          amps, n, n, gamma, sigma, core::DualisticMode::kPeak);
      for (int j = 0; j < n; ++j) {
        measured += std::fabs(latent[0] - amps[j]);
      }
    }
    measured /= trials;

    // Bound: 2^((g-1)/g) * n * (sum_i |alpha_i| (g-1)!! nu^g
    //        + |alpha_i mu^g|)^(1/g) - sum_j mu_j, alpha_i = 1/(n sigma).
    const double alpha = 1.0 / (static_cast<double>(n) * sigma);
    double inner = 0.0;
    for (int i = 0; i < n; ++i) {
      inner += alpha * DoubleFactorial(static_cast<int>(gamma) - 1) *
                   std::pow(nu, gamma) +
               std::fabs(alpha * std::pow(mu, gamma));
    }
    // The sigma scaling cancels through the root as in Eq. 2.
    const double bound =
        std::pow(2.0, (gamma - 1.0) / gamma) * n *
            std::pow(inner * sigma, 1.0 / gamma) -
        n * mu;
    std::printf("%8.2f %14.4f %14.4f %8s\n", nu, measured,
                std::fabs(bound), measured <= std::fabs(bound) ? "yes"
                                                               : "NO");
  }
  std::printf(
      "\npaper: the bound is governed by nu (amplitude stddev) — the "
      "measured gap must grow with nu and stay below the bound\n");
  return 0;
}
