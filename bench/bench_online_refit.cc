// Online-learning bench: the two numbers the subsystem exists for.
//
// 1. Consensus vs frozen on drifting streams — for each gradual-drift
//    scenario (trend drift, seasonality shift, amplitude decay) a frozen
//    single model and an OnlineTrainer-backed all-vote ensemble (K=3)
//    score the same stream; step-level false positives on drifted-normal
//    steps and recall on injected anomalies are compared. The claim: the
//    ensemble's refits absorb the drift, so consensus cuts FPs while the
//    recall give-up stays small (recorded, not hidden).
//
// 2. Refit-while-serving interference — sustained serve-pool throughput
//    with the background refit pump off vs on. Both arms carry one live
//    ensemble lane (the gate skips every post-warmup promotion), so the
//    delta isolates the low-priority refit CPU, not consensus fan-out.
//    Target: the pump costs <= 10% throughput (ratio >= 0.9).
//
// Emits BENCH_online.json for trajectory tracking.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "core/mace_detector.h"
#include "core/streaming.h"
#include "eval/profiler.h"
#include "history/store.h"
#include "online/trainer.h"
#include "serve/frontend.h"
#include "ts/generator.h"

namespace {

using namespace mace;

// ------------------------------------------------------------------
// Part 1: consensus vs frozen on drifting scenarios.

constexpr size_t kTrainLen = 2048;
constexpr size_t kCalLen = 512;
constexpr size_t kTestLen = 6000;
constexpr size_t kDriftOnset = 1500;  // test-relative; drift starts here
constexpr size_t kDriftRamp = 2000;
constexpr size_t kEnsembleK = 3;

ts::NormalPattern ScenarioPattern() {
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = 24.0;
  pattern.harmonic_weights = {1.0, 0.4};
  pattern.noise_stddev = 0.05;
  pattern.feature_weights = {1.0, 0.7};
  pattern.feature_lags = {0.0, 3.0};
  pattern.secondary_weights = {0.3, 0.2};
  return pattern;
}

core::MaceConfig ScenarioConfig() {
  core::MaceConfig config;
  config.window = 32;
  config.score_stride = 8;
  config.num_bases = 10;
  config.epochs = 3;
  config.batch_size = 4;
  config.fit_threads = 4;
  return config;
}

struct ArmCounts {
  size_t alerts = 0;
  size_t false_positives = 0;
  size_t true_positives = 0;
  size_t normal_steps = 0;
  size_t anomaly_steps = 0;

  double fp_rate() const {
    return normal_steps == 0
               ? 0.0
               : static_cast<double>(false_positives) /
                     static_cast<double>(normal_steps);
  }
  double recall() const {
    return anomaly_steps == 0
               ? 0.0
               : static_cast<double>(true_positives) /
                     static_cast<double>(anomaly_steps);
  }
};

ArmCounts Tally(const std::vector<uint8_t>& fired,
                const ts::TimeSeries& series) {
  ArmCounts counts;
  for (size_t step = 0; step < fired.size(); ++step) {
    const bool label = series.is_anomaly(step);
    if (label) {
      ++counts.anomaly_steps;
    } else {
      ++counts.normal_steps;
    }
    if (fired[step] == 0) continue;
    ++counts.alerts;
    if (label) {
      ++counts.true_positives;
    } else {
      ++counts.false_positives;
    }
  }
  return counts;
}

struct ScenarioResult {
  const char* name = "";
  double magnitude = 0.0;
  ArmCounts frozen;
  ArmCounts consensus;
  uint64_t refits = 0;
  uint64_t promotions = 0;
  uint64_t drift_alarms = 0;
};

ScenarioResult RunScenario(ts::DriftKind kind, double magnitude) {
  const ts::NormalPattern pattern = ScenarioPattern();
  const core::MaceConfig config = ScenarioConfig();
  Rng rng(7);

  // One RNG feeds train -> calibration -> test so the stream is one
  // continuous trajectory with drift switched on mid-test.
  std::vector<ts::ServiceData> services(1);
  services[0].name = "svc";
  services[0].train = ts::GenerateNormal(pattern, kTrainLen, 0, &rng);
  const ts::TimeSeries calibration =
      ts::GenerateNormal(pattern, kCalLen, kTrainLen, &rng);

  ts::DriftScenario drift;
  drift.kind = kind;
  drift.onset = kTrainLen + kCalLen + kDriftOnset;
  drift.ramp = kDriftRamp;
  drift.magnitude = magnitude;
  ts::TimeSeries test = ts::GenerateDriftingNormal(
      pattern, kTestLen, kTrainLen + kCalLen, drift, &rng);
  ts::AnomalyInjectionConfig injection;
  injection.anomaly_ratio = 0.02;
  ts::InjectAnomalies(injection, pattern, &test, &rng);

  auto base = std::make_shared<core::MaceDetector>(config);
  MACE_CHECK_OK(base->Fit(services));

  // Frozen threshold: the monitor's calibration rule (2 x P90 of scores
  // on a clean held-out stream) via the shared helper.
  std::vector<double> cal_scores;
  {
    auto scorer = core::StreamingScorer::Create(base.get(), 0);
    MACE_CHECK_OK(scorer.status());
    for (const auto& row : calibration.values()) {
      auto emitted = scorer->Push(row);
      MACE_CHECK_OK(emitted.status());
      cal_scores.insert(cal_scores.end(), emitted->begin(), emitted->end());
    }
  }
  const Result<double> threshold = CalibratedThreshold(cal_scores);
  MACE_CHECK_OK(threshold.status());

  ScenarioResult result;
  result.name = ts::DriftKindName(kind);
  result.magnitude = magnitude;

  // Frozen arm: the base model and its calibrated threshold, never
  // updated — what a deploy-once detector does under drift.
  std::vector<uint8_t> frozen_fired;
  {
    auto scorer = core::StreamingScorer::Create(base.get(), 0);
    MACE_CHECK_OK(scorer.status());
    for (const auto& row : test.values()) {
      auto emitted = scorer->Push(row);
      MACE_CHECK_OK(emitted.status());
      for (double score : *emitted) {
        frozen_fired.push_back(score > *threshold ? 1 : 0);
      }
    }
  }
  result.frozen = Tally(frozen_fired, test);

  // Consensus arm: same base model and threshold, plus the online
  // trainer — rolling buffer, staggered refits pumped every chunk, K
  // generations voting. The history store records the consensus bit.
  online::OnlineConfig online_config;
  online_config.model = config;
  online_config.buffer_capacity = 1024;
  online_config.min_refit_rows = 512;
  online_config.refit_interval = 512;
  online_config.ensemble_size = kEnsembleK;
  online_config.consensus = online::ConsensusKind::kAllVote;
  // Promote every refit: trend drift moves the level, not the frequency
  // bases, so the subspace-overlap skip heuristic would keep stale
  // generations exactly when freshness matters. This arm measures
  // consensus adaptation; the gate's skip economics are its own knob.
  online_config.gate.skip_overlap = 1.1;
  online_config.threshold_scale = 2.0;
  online_config.threshold_quantile = 0.90;
  online_config.refit_threads = 2;
  online::OnlineTrainer trainer(online_config);

  history::HistoryConfig history_config;
  history_config.capacity_per_tenant = kTestLen;  // keep every emitted step
  history::HistoryStore store(history_config);
  const auto tenant = store.Intern("bench/0");
  store.SetThreshold(tenant, *threshold);  // pre-promotion fallback bit

  core::StreamBinding binding = trainer.Bind("bench/0", 2);
  auto scorer = core::StreamingScorer::Create(base.get(), 0);
  MACE_CHECK_OK(scorer.status());
  scorer->AttachHistory(&store, tenant, 0);
  scorer->AttachOnline(binding.sink, binding.ensemble.get());

  constexpr size_t kChunk = 256;
  const auto& rows = test.values();
  for (size_t start = 0; start < rows.size(); start += kChunk) {
    const size_t end = std::min(rows.size(), start + kChunk);
    const std::vector<std::vector<double>> chunk(rows.begin() + start,
                                                 rows.begin() + end);
    MACE_CHECK_OK(scorer->PushMany(chunk).status());
    trainer.PumpRefits();  // deterministic single-threaded pump
  }

  std::vector<uint8_t> consensus_fired;
  store.VisitRange(tenant, 0, std::numeric_limits<int64_t>::max(),
                   [&](history::RecordSpan span) {
                     for (size_t i = 0; i < span.size; ++i) {
                       consensus_fired.push_back(span.data[i].anomaly);
                     }
                   });
  MACE_CHECK(consensus_fired.size() == frozen_fired.size())
      << "arms emitted different step counts: " << consensus_fired.size()
      << " vs " << frozen_fired.size();
  result.consensus = Tally(consensus_fired, test);

  const online::OnlineTrainer::Stats stats = trainer.stats();
  result.refits = stats.refits;
  result.promotions = stats.promotions;
  result.drift_alarms = stats.drift_alarms;
  return result;
}

// ------------------------------------------------------------------
// Part 2: refit-while-serving throughput interference.

constexpr int kServeTenants = 16;
constexpr size_t kWarmupSteps = 192;
constexpr size_t kTimedSteps = 12000;
constexpr int kServeShards = 2;
// Refit duty cycle of the interference arms: one lightweight refit per
// stream per kRefitInterval rows. This is the deployment's actual knob —
// background training must be sparse relative to serving for the <= 10%
// budget to be meaningful (on this box every refit millisecond is a
// serving millisecond).
constexpr uint64_t kRefitInterval = 6144;

struct InterferenceArm {
  double seconds = 0.0;
  double obs_per_sec = 0.0;
  uint64_t refits = 0;
};

// Streams `steps` rows of `series` (offset by `offset`) to every tenant
// through a fresh frontend wired to a fresh trainer, and times it. When
// `pump` is true the trainer's background thread refits continuously
// during the timed phase; either way both arms promote exactly one
// generation per stream at warmup (ensemble_size=1 and a zero-overlap
// skip gate make every later candidate a skip), so consensus lane cost
// is identical and the delta is pure refit interference.
InterferenceArm RunServeArm(
    const std::shared_ptr<const core::MaceDetector>& model,
    const ts::TimeSeries& series, bool pump) {
  online::OnlineConfig online_config;
  // Refit models are independent of the serving model: small window,
  // one epoch, tiny buffer — the background work is real (full Fit +
  // calibration per refit) but sized for a sparse duty cycle.
  online_config.model.window = 16;
  online_config.model.score_stride = 16;
  online_config.model.num_bases = 4;
  online_config.model.epochs = 1;
  online_config.model.batch_size = 4;
  online_config.buffer_capacity = 96;
  online_config.min_refit_rows = 96;
  online_config.refit_interval = kRefitInterval;
  online_config.ensemble_size = 1;
  online_config.gate.skip_overlap = 0.0;  // full ensemble => always skip
  online_config.gate.drift_overlap = 0.0;  // never alarm
  online_config.refit_threads = 2;
  online::OnlineTrainer trainer(online_config);

  serve::ServeConfig serve_config;
  serve_config.num_shards = kServeShards;
  serve_config.overload_policy = serve::OverloadPolicy::kBlock;
  serve_config.online = &trainer;
  auto frontend = serve::ServeFrontend::Create(model, serve_config);
  MACE_CHECK_OK(frontend.status());

  std::vector<std::string> tenants;
  for (int k = 0; k < kServeTenants; ++k) {
    tenants.push_back("svc" + std::to_string(k));
  }

  // Warmup: fill every rolling buffer past min_refit_rows, then promote
  // each stream's single generation so both arms serve one live lane.
  for (size_t t = 0; t < kWarmupSteps; ++t) {
    for (const std::string& tenant : tenants) {
      MACE_CHECK_OK(
          (*frontend)->Submit(tenant, 0, series.values()[t]).status());
    }
  }
  (*frontend)->Flush();
  trainer.PumpRefits();
  const uint64_t warm_refits = trainer.stats().refits;
  MACE_CHECK(trainer.stats().promotions ==
             static_cast<uint64_t>(kServeTenants))
      << "warmup should promote exactly one generation per stream";

  if (pump) trainer.Start(std::chrono::milliseconds(2));
  eval::StopWatch watch;
  for (size_t t = 0; t < kTimedSteps; ++t) {
    for (const std::string& tenant : tenants) {
      MACE_CHECK_OK(
          (*frontend)
              ->Submit(tenant, 0, series.values()[kWarmupSteps + t])
              .status());
    }
  }
  (*frontend)->Flush();
  InterferenceArm arm;
  arm.seconds = watch.ElapsedSeconds();
  if (pump) trainer.Stop();

  const size_t observations = kTimedSteps * kServeTenants;
  const serve::ShardStats totals = (*frontend)->Stats().Totals();
  MACE_CHECK(totals.scored_steps ==
             observations + kWarmupSteps * kServeTenants)
      << "pool lost observations";
  arm.obs_per_sec = static_cast<double>(observations) / arm.seconds;
  arm.refits = trainer.stats().refits - warm_refits;
  return arm;
}

void PrintArm(const char* label, const ArmCounts& counts) {
  std::printf("    %-10s alerts %5zu  fp %5zu (rate %.4f)  recall %.3f\n",
              label, counts.alerts, counts.false_positives,
              counts.fp_rate(), counts.recall());
}

}  // namespace

int main() {
  std::printf(
      "Consensus vs frozen on drifting streams — %zu train / %zu test "
      "steps, drift onset %zu, all-vote K=%zu\n",
      kTrainLen, kTestLen, kDriftOnset, kEnsembleK);

  const struct {
    ts::DriftKind kind;
    double magnitude;
  } scenarios[] = {
      {ts::DriftKind::kTrendDrift, 0.5},
      {ts::DriftKind::kSeasonalityShift, 0.5},
      {ts::DriftKind::kAmplitudeDecay, 0.6},
  };
  std::vector<ScenarioResult> results;
  for (const auto& scenario : scenarios) {
    ScenarioResult result = RunScenario(scenario.kind, scenario.magnitude);
    std::printf(
        "  %s (magnitude %.1f): %llu refits, %llu promotions, %llu drift "
        "alarms\n",
        result.name, result.magnitude,
        static_cast<unsigned long long>(result.refits),
        static_cast<unsigned long long>(result.promotions),
        static_cast<unsigned long long>(result.drift_alarms));
    PrintArm("frozen", result.frozen);
    PrintArm("consensus", result.consensus);
    results.push_back(result);
  }

  std::printf(
      "\nRefit-while-serving interference — %d tenants x %zu steps, %d "
      "shards, low-priority pump\n",
      kServeTenants, kTimedSteps, kServeShards);
  core::MaceConfig serve_model_config;
  serve_model_config.epochs = 2;
  serve_model_config.score_stride = serve_model_config.window;
  serve_model_config.num_bases = 12;
  serve_model_config.fit_threads = 4;
  Rng serve_rng(11);
  const ts::NormalPattern serve_pattern = ScenarioPattern();
  std::vector<ts::ServiceData> serve_train(1);
  serve_train[0].name = "svc";
  serve_train[0].train =
      ts::GenerateNormal(serve_pattern, kTrainLen, 0, &serve_rng);
  const ts::TimeSeries serve_stream = ts::GenerateNormal(
      serve_pattern, kWarmupSteps + kTimedSteps, kTrainLen, &serve_rng);
  auto serve_model = std::make_shared<core::MaceDetector>(serve_model_config);
  MACE_CHECK_OK(serve_model->Fit(serve_train));

  const InterferenceArm baseline =
      RunServeArm(serve_model, serve_stream, /*pump=*/false);
  const InterferenceArm loaded =
      RunServeArm(serve_model, serve_stream, /*pump=*/true);
  const double ratio =
      baseline.obs_per_sec > 0 ? loaded.obs_per_sec / baseline.obs_per_sec
                               : 0.0;
  std::printf("  pump off: %10.0f obs/s (%.3f s, %llu refits)\n",
              baseline.obs_per_sec, baseline.seconds,
              static_cast<unsigned long long>(baseline.refits));
  std::printf("  pump on:  %10.0f obs/s (%.3f s, %llu refits)\n",
              loaded.obs_per_sec, loaded.seconds,
              static_cast<unsigned long long>(loaded.refits));
  std::printf("  throughput ratio %.3f (target >= 0.9)\n", ratio);

  {
    std::ofstream out("BENCH_online.json", std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"online_refit\",\n"
        << "  \"consensus\": {\"kind\": \"all\", \"ensemble_size\": "
        << kEnsembleK << "},\n"
        << "  \"scenarios\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& r = results[i];
      out << "    {\n"
          << "      \"drift\": \"" << r.name << "\",\n"
          << "      \"magnitude\": " << r.magnitude << ",\n"
          << "      \"frozen\": {\"alerts\": " << r.frozen.alerts
          << ", \"false_positives\": " << r.frozen.false_positives
          << ", \"fp_rate\": " << r.frozen.fp_rate()
          << ", \"recall\": " << r.frozen.recall() << "},\n"
          << "      \"consensus\": {\"alerts\": " << r.consensus.alerts
          << ", \"false_positives\": " << r.consensus.false_positives
          << ", \"fp_rate\": " << r.consensus.fp_rate()
          << ", \"recall\": " << r.consensus.recall() << "},\n"
          << "      \"recall_delta\": "
          << r.consensus.recall() - r.frozen.recall() << ",\n"
          << "      \"refits\": " << r.refits
          << ", \"promotions\": " << r.promotions
          << ", \"drift_alarms\": " << r.drift_alarms << "\n"
          << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"interference\": {\n"
        << "    \"tenants\": " << kServeTenants << ",\n"
        << "    \"steps_per_tenant\": " << kTimedSteps << ",\n"
        << "    \"shards\": " << kServeShards << ",\n"
        << "    \"baseline_obs_per_sec\": " << baseline.obs_per_sec << ",\n"
        << "    \"refit_obs_per_sec\": " << loaded.obs_per_sec << ",\n"
        << "    \"throughput_ratio\": " << ratio << ",\n"
        << "    \"refits_during_timed\": " << loaded.refits << "\n"
        << "  }\n"
        << "}\n";
  }
  std::printf("wrote BENCH_online.json\n");
  return 0;
}
