// Serving-path throughput: replays a synthetic multi-service workload
// through the src/serve/ sharded pool and reports sustained
// observations/second vs shard count — the operational side of the
// paper's S2 claim (no temporal recurrence => per-window scoring
// parallelizes across shards). Under kBlock nothing may be shed; the
// pool output is the exact sequential StreamingScorer output per tenant
// (pinned sessions), so this measures real scoring, not drops.
//
// --json-out <path> writes the pinned canonical configuration's row (4
// shards, queue 4096, micro-batch 128, kBlock) as JSON so a tracked
// trajectory compares like with like across runs — the widest-pool
// "best" row moves with scheduler noise, the canonical row does not.
// The combined BENCH_serve.json artifact (in-process baseline plus the
// multi-process scale-out table) is owned by bench_serve_scaleout; this
// bench stays the in-process shard sweep.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "eval/profiler.h"
#include "serve/frontend.h"
#include "ts/profiles.h"

int main(int argc, char** argv) {
  using namespace mace;

  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_throughput [--json-out <path>]\n");
      return 2;
    }
  }

  // Workload: 64 simulated services (tenants), each streaming the test
  // split of one of 4 fitted normal patterns.
  constexpr int kTenants = 64;
  constexpr int kFittedServices = 4;
  constexpr size_t kStepsPerTenant = 1500;

  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = kFittedServices;
  profile.test_length = kStepsPerTenant;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  // Serving-tuned hyperparameters: same architecture, with non-overlapping
  // scoring windows (stride = window) and a leaner subspace — the knobs a
  // deployment actually turns for throughput.
  core::MaceConfig config;
  config.epochs = 2;
  config.score_stride = config.window;
  config.num_bases = 12;
  auto model = std::make_shared<core::MaceDetector>(config);
  MACE_CHECK_OK(model->Fit(dataset.services));

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Serving throughput — %d tenants x %zu steps through the sharded "
      "pool (%u hardware core%s), policy=block\n",
      kTenants, kStepsPerTenant, cores, cores == 1 ? "" : "s");
  std::printf("%8s %12s %14s %10s %8s\n", "shards", "seconds", "obs/s",
              "speedup", "shed");

  std::vector<std::string> tenants;
  for (int k = 0; k < kTenants; ++k) {
    tenants.push_back("svc" + std::to_string(k));
  }

  // The canonical configuration whose row BENCH_serve.json records.
  constexpr int kCanonicalShards = 4;
  constexpr size_t kQueueCapacity = 4096;
  constexpr size_t kMaxBatch = 128;

  double base_seconds = 0.0;
  double canonical_obs_per_sec = 0.0;
  uint64_t canonical_shed = 0;
  for (int shards : {1, 2, 4, 8}) {
    serve::ServeConfig serve_config;
    serve_config.num_shards = shards;
    serve_config.queue_capacity = kQueueCapacity;
    serve_config.max_batch = kMaxBatch;
    serve_config.overload_policy = serve::OverloadPolicy::kBlock;
    auto frontend = serve::ServeFrontend::Create(model, serve_config);
    MACE_CHECK_OK(frontend.status());

    eval::StopWatch watch;
    for (size_t t = 0; t < kStepsPerTenant; ++t) {
      for (int k = 0; k < kTenants; ++k) {
        const int service = k % kFittedServices;
        auto f = (*frontend)->Submit(
            tenants[static_cast<size_t>(k)], service,
            dataset.services[static_cast<size_t>(service)].test.values()[t]);
        MACE_CHECK_OK(f.status());
        // Future discarded: the shard fulfills it regardless; the final
        // Flush is the completion barrier.
      }
    }
    (*frontend)->Flush();
    const double seconds = watch.ElapsedSeconds();

    const serve::ShardStats totals = (*frontend)->Stats().Totals();
    const size_t observations = kStepsPerTenant * kTenants;
    MACE_CHECK(totals.scored_steps == observations)
        << "pool lost observations: " << totals.scored_steps << " of "
        << observations;
    const double obs_per_sec = static_cast<double>(observations) / seconds;
    if (shards == 1) base_seconds = seconds;
    if (shards == kCanonicalShards) {
      canonical_obs_per_sec = obs_per_sec;
      canonical_shed = totals.shed;
    }
    std::printf("%8d %12.3f %14.0f %9.2fx %8llu\n", shards, seconds,
                obs_per_sec, base_seconds / seconds,
                static_cast<unsigned long long>(totals.shed));
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"serve_throughput\",\n"
        << "  \"config\": {\n"
        << "    \"tenants\": " << kTenants << ",\n"
        << "    \"steps_per_tenant\": " << kStepsPerTenant << ",\n"
        << "    \"fitted_services\": " << kFittedServices << ",\n"
        << "    \"policy\": \"block\",\n"
        << "    \"shards\": " << kCanonicalShards << ",\n"
        << "    \"queue_capacity\": " << kQueueCapacity << ",\n"
        << "    \"max_batch\": " << kMaxBatch << ",\n"
        << "    \"epochs\": " << config.epochs << ",\n"
        << "    \"score_stride\": " << config.score_stride << ",\n"
        << "    \"num_bases\": " << config.num_bases << "\n"
        << "  },\n"
        << "  \"obs_per_sec\": " << canonical_obs_per_sec << ",\n"
        << "  \"shed\": " << canonical_shed << "\n"
        << "}\n";
  }
  std::printf(
      "\ncanonical (%d shards): %.0f obs/s, shed %llu (target: >= 100k "
      "obs/s, shed 0 under kBlock)%s%s\n",
      kCanonicalShards, canonical_obs_per_sec,
      static_cast<unsigned long long>(canonical_shed),
      json_out.empty() ? "" : " — JSON written to ",
      json_out.c_str());
  return 0;
}
