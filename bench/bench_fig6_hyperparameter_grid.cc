// Regenerates Fig 6(b)-(f): grid searches over pairs of MACE
// hyperparameters on a reduced SMD-like workload:
//  (b) gamma_t x gamma_f   (c) gamma_t x sigma_t   (d) gamma_f x sigma_f
//  (e) time kernel x gamma_t   (f) #bases x gamma_f

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "core/mace_detector.h"

namespace {

using namespace mace;

ts::Dataset SmallSmd() {
  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 6;
  profile.train_length = 800;
  profile.test_length = 480;
  return ts::GenerateDataset(profile);
}

double F1For(const core::MaceConfig& config, const ts::Dataset& dataset) {
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(dataset.services));
  std::vector<eval::PrMetrics> metrics;
  for (size_t s = 0; s < dataset.services.size(); ++s) {
    auto scores =
        detector.Score(static_cast<int>(s), dataset.services[s].test);
    MACE_CHECK_OK(scores.status());
    auto best = eval::BestF1Threshold(*scores,
                                      dataset.services[s].test.labels());
    MACE_CHECK_OK(best.status());
    metrics.push_back(best->metrics);
  }
  return eval::MacroAverage(metrics).f1;
}

void Grid(const char* title, const ts::Dataset& dataset,
          const std::vector<double>& rows, const std::vector<double>& cols,
          const std::function<void(core::MaceConfig*, double, double)>& set) {
  std::printf("\n%s\n        ", title);
  for (double c : cols) std::printf(" %6.0f", c);
  std::printf("\n");
  for (double r : rows) {
    std::printf("%7.0f ", r);
    for (double c : cols) {
      core::MaceConfig config;
      config.epochs = 3;
      set(&config, r, c);
      std::printf(" %6.3f", F1For(config, dataset));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const ts::Dataset dataset = SmallSmd();

  Grid("Fig 6(b) — F1 for gamma_t (rows) x gamma_f (cols)", dataset,
       {1, 3, 7, 11}, {1, 3, 7, 11},
       [](core::MaceConfig* c, double r, double col) {
         c->gamma_t = r;
         c->gamma_f = col;
       });
  Grid("Fig 6(c) — F1 for gamma_t (rows) x sigma_t (cols)", dataset,
       {1, 3, 7, 11}, {3, 5, 10},
       [](core::MaceConfig* c, double r, double col) {
         c->gamma_t = r;
         c->sigma_t = col;
       });
  Grid("Fig 6(d) — F1 for gamma_f (rows) x sigma_f (cols)", dataset,
       {1, 3, 7, 11}, {3, 5, 10},
       [](core::MaceConfig* c, double r, double col) {
         c->gamma_f = r;
         c->sigma_f = col;
       });
  Grid("Fig 6(e) — F1 for time kernel (rows) x gamma_t (cols)", dataset,
       {3, 5, 7, 11}, {1, 3, 7},
       [](core::MaceConfig* c, double r, double col) {
         c->time_kernel = static_cast<int>(r);
         c->gamma_t = col;
       });
  Grid("Fig 6(f) — F1 for #bases (rows) x gamma_f (cols)", dataset,
       {4, 8, 12, 16, 20}, {3, 7, 11},
       [](core::MaceConfig* c, double r, double col) {
         c->num_bases = static_cast<int>(r);
         c->gamma_f = col;
       });

  std::printf(
      "\npaper trends: gamma = 1 (standard convolution) is the weakest; "
      "performance is stable in sigma; kernel size and #bases have an "
      "interior optimum\n");
  return 0;
}
