// Regenerates Table VIII: train on group 0, test on the unseen group 1 of
// every dataset. MACE transfers via per-service subspace extraction
// (preprocessing only, no retraining); baselines freeze their weights.
// JumpStarter (Signal-PCA) is excluded as in the paper.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const std::vector<ts::DatasetProfile> profiles = {
      ts::SmdProfile(), ts::Jd1Profile(), ts::Jd2Profile(),
      ts::SmapProfile()};

  std::vector<std::string> names;
  for (const auto& p : profiles) names.push_back(p.name);
  benchutil::MetricsTable table(names);

  std::vector<std::string> methods = baselines::NeuralBaselineNames();
  methods.push_back("MACE");

  for (const std::string& method : methods) {
    std::vector<eval::PrMetrics> per_dataset;
    for (const ts::DatasetProfile& profile : profiles) {
      const ts::Dataset dataset = ts::GenerateDataset(profile);
      const std::vector<ts::ServiceData> train_group =
          ts::ServiceGroup(dataset, 0);
      const std::vector<ts::ServiceData> test_group =
          ts::ServiceGroup(dataset, 1);
      auto detector = benchutil::MakeBenchDetector(method, profile.name);
      MACE_CHECK_OK(detector->Fit(train_group));
      Result<eval::PrMetrics> avg =
          benchutil::EvaluateUnseen(detector.get(), test_group);
      MACE_CHECK_OK(avg.status());
      per_dataset.push_back(*avg);
      std::fprintf(stderr, "[table8] %s on %s: F1=%.3f\n", method.c_str(),
                   profile.name.c_str(), avg->f1);
    }
    table.AddRow(method, per_dataset);
  }

  std::printf(
      "Table VIII — trained on group 0, evaluated on unseen group 1\n");
  table.Print();
  return 0;
}
