#include "bench/bench_util.h"

#include <cstdio>

#include "obs/export.h"
#include "obs/metrics.h"

namespace mace::benchutil {

Status WriteStageTimingJson(const std::string& path) {
  std::string json_path = path;
  if (json_path.size() < 5 ||
      json_path.compare(json_path.size() - 5, 5, ".json") != 0) {
    json_path += ".json";
  }
  return obs::WriteMetricsFile(json_path);
}

void PrintStageTimingSummary() {
  for (const obs::FamilySnapshot& family : obs::Metrics().Collect()) {
    if (family.name != "mace_stage_latency_seconds") continue;
    for (const obs::InstrumentSnapshot& stage : family.instruments) {
      if (stage.count == 0) continue;
      std::string label = "?";
      for (const auto& [key, value] : stage.labels) {
        if (key == "stage") label = value;
      }
      std::fprintf(stderr,
                   "[stage] %-22s n=%-8llu mean %8.1f us  total %.3f s\n",
                   label.c_str(),
                   static_cast<unsigned long long>(stage.count),
                   1e6 * stage.sum / static_cast<double>(stage.count),
                   stage.sum);
    }
  }
}

baselines::TrainOptions DefaultOptions() {
  baselines::TrainOptions options;
  options.window = 40;
  options.train_stride = 8;
  options.score_stride = 5;
  options.epochs = 5;
  options.learning_rate = 1e-3;
  options.seed = 17;
  return options;
}

core::MaceConfig MaceConfigFor(const std::string& dataset_name) {
  const baselines::TrainOptions options = DefaultOptions();
  core::MaceConfig config;
  config.window = options.window;
  config.train_stride = options.train_stride;
  config.score_stride = options.score_stride;
  config.epochs = options.epochs;
  config.learning_rate = options.learning_rate;
  config.grad_clip = options.grad_clip;
  config.seed = options.seed;
  // Per-dataset time-domain powers (the paper tunes gamma per dataset,
  // Table IV).
  if (dataset_name == "J-D1") {
    config.gamma_t = 7.0;
  } else if (dataset_name == "J-D2") {
    config.gamma_t = 5.0;
  } else {
    config.gamma_t = 3.0;  // SMD, SMAP, MC
  }
  return config;
}

std::unique_ptr<core::Detector> MakeBenchDetector(
    const std::string& method, const std::string& dataset_name) {
  if (method == "MACE") {
    return std::make_unique<core::MaceDetector>(MaceConfigFor(dataset_name));
  }
  Result<std::unique_ptr<core::Detector>> detector =
      baselines::MakeDetector(method, DefaultOptions());
  MACE_CHECK_OK(detector.status());
  return std::move(*detector);
}

Result<eval::PrMetrics> EvaluateUnified(
    core::Detector* detector, const std::vector<ts::ServiceData>& group,
    std::vector<eval::PrMetrics>* per_service) {
  MACE_RETURN_IF_ERROR(detector->Fit(group));
  std::vector<eval::PrMetrics> metrics;
  for (size_t s = 0; s < group.size(); ++s) {
    MACE_ASSIGN_OR_RETURN(std::vector<double> scores,
                          detector->Score(static_cast<int>(s),
                                          group[s].test));
    MACE_ASSIGN_OR_RETURN(
        eval::ThresholdResult best,
        eval::BestF1Threshold(scores, group[s].test.labels()));
    metrics.push_back(best.metrics);
  }
  if (per_service != nullptr) *per_service = metrics;
  return eval::MacroAverage(metrics);
}

Result<eval::PrMetrics> EvaluateTailored(
    const std::function<std::unique_ptr<core::Detector>()>& factory,
    const std::vector<ts::ServiceData>& group,
    std::vector<eval::PrMetrics>* per_service) {
  std::vector<eval::PrMetrics> metrics;
  for (const ts::ServiceData& service : group) {
    std::unique_ptr<core::Detector> detector = factory();
    MACE_RETURN_IF_ERROR(detector->Fit({service}));
    MACE_ASSIGN_OR_RETURN(std::vector<double> scores,
                          detector->Score(0, service.test));
    MACE_ASSIGN_OR_RETURN(
        eval::ThresholdResult best,
        eval::BestF1Threshold(scores, service.test.labels()));
    metrics.push_back(best.metrics);
  }
  if (per_service != nullptr) *per_service = metrics;
  return eval::MacroAverage(metrics);
}

Result<eval::PrMetrics> EvaluateUnseen(
    core::Detector* detector, const std::vector<ts::ServiceData>& test_group,
    std::vector<eval::PrMetrics>* per_service) {
  std::vector<eval::PrMetrics> metrics;
  for (const ts::ServiceData& service : test_group) {
    MACE_ASSIGN_OR_RETURN(std::vector<double> scores,
                          detector->ScoreUnseen(service));
    MACE_ASSIGN_OR_RETURN(
        eval::ThresholdResult best,
        eval::BestF1Threshold(scores, service.test.labels()));
    metrics.push_back(best.metrics);
  }
  if (per_service != nullptr) *per_service = metrics;
  return eval::MacroAverage(metrics);
}

MetricsTable::MetricsTable(std::vector<std::string> dataset_names)
    : datasets_(std::move(dataset_names)) {}

void MetricsTable::AddRow(const std::string& method,
                          const std::vector<eval::PrMetrics>& per_dataset) {
  rows_.push_back(Row{method, per_dataset});
}

void MetricsTable::Print() const {
  std::printf("%-14s", "method");
  for (const std::string& name : datasets_) {
    std::printf(" | %-7s P     R     F1", name.c_str());
  }
  std::printf("\n");
  for (const Row& row : rows_) {
    std::printf("%-14s", row.method.c_str());
    for (size_t d = 0; d < datasets_.size(); ++d) {
      if (d < row.metrics.size()) {
        const eval::PrMetrics& m = row.metrics[d];
        std::printf(" |       %.3f %.3f %.3f", m.precision, m.recall, m.f1);
      } else {
        std::printf(" |       %5s %5s %5s", "-", "-", "-");
      }
    }
    std::printf("\n");
  }
}

}  // namespace mace::benchutil
