// Validates Theorem 2 / Corollary 1: with a context-aware subset of k
// bases, the KL reconstruction-error gap between anomalies and
// normalities equals log(sum_k q_N / sum_k q_A) > 0 whenever the kept
// normal mass exceeds k/n — and collapses to 0 at k = n (vanilla DFT).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "fft/spectrum.h"

int main() {
  using namespace mace;
  const int n = 20;  // spectrum size
  Rng rng(7);

  // Normal spectrum: a few strong lines over a weak floor.
  std::vector<double> normal(n, 0.05);
  normal[3] = 1.0;
  normal[7] = 0.7;
  normal[12] = 0.4;

  std::printf(
      "Theorem 2 / Corollary 1 — KL error gap between anomaly and "
      "normality vs subset size k (n=%d)\n",
      n);
  std::printf("%4s %12s %12s %12s %10s\n", "k", "KL(normal)", "KL(anomaly)",
              "gap", "kept mass");

  for (int k : {2, 4, 8, 12, 16, 20}) {
    // Assumption 1: anomalies add a positive-mean shift to every bin.
    double gap_sum = 0.0, normal_sum = 0.0, anomaly_sum = 0.0,
           kept_sum = 0.0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<double> anomaly(n);
      for (int i = 0; i < n; ++i) {
        anomaly[i] = normal[i] + std::max(0.0, rng.Gaussian(0.15, 0.1));
      }
      const auto q_normal = fft::NormalizeSpectrum(normal);
      const auto q_anomaly = fft::NormalizeSpectrum(anomaly);
      const auto subset = fft::TopKIndices(normal, k, /*skip_dc=*/false);
      const double kl_normal = fft::SubsetKlError(q_normal, subset);
      const double kl_anomaly = fft::SubsetKlError(q_anomaly, subset);
      normal_sum += kl_normal;
      anomaly_sum += kl_anomaly;
      gap_sum += kl_anomaly - kl_normal;
      double kept = 0.0;
      for (int idx : subset) kept += q_normal[static_cast<size_t>(idx)];
      kept_sum += kept;
    }
    std::printf("%4d %12.4f %12.4f %12.4f %10.3f\n", k,
                normal_sum / trials, anomaly_sum / trials, gap_sum / trials,
                kept_sum / trials);
  }
  std::printf(
      "\npaper: the gap is positive for k < n whenever the kept mass "
      "exceeds k/n, and exactly 0 at k = n — a strict subset of bases "
      "separates anomalies better than the full spectrum\n");
  return 0;
}
