// Regenerates Fig 5(c): per-service F1 on SMD when every method trains one
// unified model for the group — MACE's scores should cluster tightly
// around a high mean while baselines vary widely across services.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/math_utils.h"

int main() {
  using namespace mace;
  const ts::DatasetProfile profile = ts::SmdProfile();
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  const std::vector<ts::ServiceData> group = ts::ServiceGroup(dataset, 0);

  std::printf(
      "Fig 5(c) — per-service F1 on SMD with one unified model per "
      "method\n");
  std::printf("%-14s", "method");
  for (size_t s = 0; s < group.size(); ++s) std::printf(" svc%-3zu", s);
  std::printf("  mean  stddev  min\n");

  std::vector<std::string> methods = baselines::NeuralBaselineNames();
  methods.push_back("MACE");
  for (const std::string& method : methods) {
    auto detector = benchutil::MakeBenchDetector(method, "SMD");
    std::vector<eval::PrMetrics> per_service;
    Result<eval::PrMetrics> avg =
        benchutil::EvaluateUnified(detector.get(), group, &per_service);
    MACE_CHECK_OK(avg.status());
    std::printf("%-14s", method.c_str());
    std::vector<double> f1s;
    for (const eval::PrMetrics& m : per_service) {
      std::printf(" %5.3f ", m.f1);
      f1s.push_back(m.f1);
    }
    std::printf(" %5.3f %6.3f %5.3f\n", Mean(f1s), StdDev(f1s),
                *std::min_element(f1s.begin(), f1s.end()));
  }
  std::printf(
      "\npaper: MACE's per-service F1 centers tightly around a high mean; "
      "baselines swing across a broad range\n");
  return 0;
}
