// Channel-aware detector vs MACE on cross-channel correlation breaks
// (DESIGN.md §16). The scenario phase-shifts every channel except channel
// 0 inside each break window, which leaves every marginal amplitude
// spectrum untouched — a purely spectral per-channel detector has nothing
// to key on — while the inter-channel correlation flips. The bench fits
// both detectors on the same multi-channel services, scores the same
// break-laden test splits, and compares recall at a matched
// false-positive-rate budget (macro-averaged over services). Emits
// BENCH_channel.json (or --json-out <path>) with the pinned canonical
// config for trajectory tracking.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "eval/roc.h"
#include "ts/generator.h"
#include "ts/time_series.h"

namespace {

constexpr size_t kTrainLength = 1024;
constexpr size_t kTestLength = 768;
constexpr int kChannels = 4;
constexpr double kFprBudget = 0.05;

/// One multi-channel service: correlated channels sharing seasonal
/// drivers through per-channel weights and phase lags.
mace::ts::NormalPattern ServicePattern(int index) {
  using mace::ts::WaveformKind;
  mace::ts::NormalPattern pattern;
  const WaveformKind kinds[] = {WaveformKind::kSinusoid,
                                WaveformKind::kSquare,
                                WaveformKind::kSawtooth,
                                WaveformKind::kSinusoid};
  const double periods[] = {24.0, 32.0, 20.0, 28.0};
  pattern.kind = kinds[index % 4];
  pattern.period = periods[index % 4];
  pattern.harmonic_weights = {1.0, 0.35};
  pattern.amplitude = 1.0;
  pattern.noise_stddev = 0.05;
  pattern.feature_weights = {1.0, 0.9, 1.1, 0.8};
  pattern.feature_lags = {0.0, 3.0, 7.0, 11.0};
  return pattern;
}

std::vector<mace::ts::ChannelBreakScenario> Breaks() {
  mace::ts::ChannelBreakScenario first;
  first.start = 192;
  first.length = 128;
  mace::ts::ChannelBreakScenario second;
  second.start = 480;
  second.length = 128;
  return {first, second};
}

struct DetectorResult {
  double recall_at_budget = 0.0;  ///< macro-averaged over services
  double auroc = 0.0;
};

DetectorResult Evaluate(const std::string& method,
                        const std::vector<mace::ts::ServiceData>& services) {
  using namespace mace;
  baselines::TrainOptions options = benchutil::DefaultOptions();
  Result<std::unique_ptr<core::Detector>> detector =
      baselines::MakeDetector(method, options);
  MACE_CHECK_OK(detector.status());
  MACE_CHECK_OK((*detector)->Fit(services));

  DetectorResult result;
  for (size_t i = 0; i < services.size(); ++i) {
    Result<std::vector<double>> scores =
        (*detector)->Score(static_cast<int>(i), services[i].test);
    MACE_CHECK_OK(scores.status());
    Result<eval::RankingQuality> ranking =
        eval::ComputeRanking(*scores, services[i].test.labels());
    MACE_CHECK_OK(ranking.status());
    result.recall_at_budget +=
        eval::RecallAtFalsePositiveRate(*ranking, kFprBudget);
    result.auroc += ranking->auroc;
  }
  const auto n = static_cast<double>(services.size());
  result.recall_at_budget /= n;
  result.auroc /= n;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;

  std::string json_out = "BENCH_channel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json-out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<ts::ChannelBreakScenario> breaks = Breaks();
  std::vector<ts::ServiceData> services;
  for (int s = 0; s < 4; ++s) {
    const ts::NormalPattern pattern = ServicePattern(s);
    Rng rng(1000 + static_cast<uint64_t>(s));
    ts::ServiceData service;
    service.train = ts::GenerateNormal(pattern, kTrainLength, 0, &rng);
    service.test = ts::GenerateCorrelatedChannelBreak(
        pattern, kTestLength, kTrainLength, breaks, &rng);
    services.push_back(std::move(service));
  }
  size_t positive_steps = 0;
  for (uint8_t l : services.front().test.labels()) positive_steps += l != 0;

  const DetectorResult mace_result = Evaluate("MACE", services);
  const DetectorResult channel_result = Evaluate("ChannelAware", services);

  std::printf(
      "Correlated channel breaks — %zu services x %d channels, "
      "%zu/%zu anomalous test steps, FP budget %.2f\n",
      services.size(), kChannels, positive_steps, kTestLength, kFprBudget);
  std::printf("%-14s %18s %10s\n", "method", "recall@fpr<=0.05", "AUROC");
  std::printf("%-14s %18.3f %10.3f\n", "MACE", mace_result.recall_at_budget,
              mace_result.auroc);
  std::printf("%-14s %18.3f %10.3f\n", "ChannelAware",
              channel_result.recall_at_budget, channel_result.auroc);

  // The acceptance gate of the scenario: the marginal-spectrum detector
  // must be effectively blind here while the fusion term catches it.
  const bool gate = mace_result.recall_at_budget <= 0.2 &&
                    channel_result.recall_at_budget >= 0.8;
  std::printf("gate (MACE <= 0.2, ChannelAware >= 0.8): %s\n",
              gate ? "PASS" : "FAIL");

  {
    std::ofstream out(json_out, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"channel\",\n"
        << "  \"config\": {\n"
        << "    \"services\": " << services.size() << ",\n"
        << "    \"channels\": " << kChannels << ",\n"
        << "    \"train_length\": " << kTrainLength << ",\n"
        << "    \"test_length\": " << kTestLength << ",\n"
        << "    \"break_length\": " << breaks.front().length << ",\n"
        << "    \"breaks\": " << breaks.size() << ",\n"
        << "    \"phase_shift\": " << breaks.front().phase_shift << ",\n"
        << "    \"fpr_budget\": " << kFprBudget << "\n"
        << "  },\n"
        << "  \"mace_recall_at_budget\": " << mace_result.recall_at_budget
        << ",\n"
        << "  \"mace_auroc\": " << mace_result.auroc << ",\n"
        << "  \"channel_recall_at_budget\": "
        << channel_result.recall_at_budget << ",\n"
        << "  \"channel_auroc\": " << channel_result.auroc << ",\n"
        << "  \"gate_pass\": " << (gate ? "true" : "false") << "\n"
        << "}\n";
  }
  std::printf("wrote %s\n", json_out.c_str());
  return gate ? 0 : 1;
}
