// Regenerates Fig 3: the behaviour of dualistic vs standard convolution.
//  (a) contribution of a deviation to the peak-convolution output as gamma
//      grows;
//  (b) time domain: standard convolution smooths a point anomaly,
//      dualistic convolution extends it;
//  (c) frequency domain: the latent-spectrum gap (Definition 1) of normal
//      (low variance) vs anomalous (high variance) spectra.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/dualistic_conv.h"

int main() {
  using namespace mace;
  using core::DualisticConvolve;
  using core::DualisticMode;

  // -- (a) contribution of the deviation ----------------------------------
  std::printf(
      "Fig 3(a) — share of the peak-conv output contributed by a 2.0 "
      "deviation in a window of 0.2s (kernel 5)\n");
  std::printf("%8s %14s\n", "gamma", "output");
  const std::vector<double> window = {0.2, 0.2, 2.0, 0.2, 0.2};
  for (double gamma : {1.0, 3.0, 5.0, 7.0, 11.0}) {
    const auto out =
        DualisticConvolve(window, 5, 1, gamma, 5.0, DualisticMode::kPeak);
    std::printf("%8.0f %14.4f\n", gamma, out[0]);
  }
  std::printf("  (gamma = 1 is the plain average 0.56; larger gamma "
              "approaches the deviation 2.0)\n\n");

  // -- (b) time domain ------------------------------------------------------
  std::printf(
      "Fig 3(b) — a 1-step spike under standard vs dualistic "
      "convolution (kernel 5)\n");
  std::vector<double> series(15, 0.1);
  series[7] = 2.0;
  const auto standard = core::DualisticAmplify(series, 5, 1.0, 5.0);
  const auto dualistic = core::DualisticAmplify(series, 5, 11.0, 5.0);
  std::printf("%4s %10s %10s %10s\n", "t", "input", "standard",
              "dualistic");
  for (size_t t = 0; t < series.size(); ++t) {
    std::printf("%4zu %10.3f %10.3f %10.3f\n", t, series[t], standard[t],
                dualistic[t]);
  }
  int standard_high = 0, dualistic_high = 0;
  for (size_t t = 0; t < series.size(); ++t) {
    standard_high += standard[t] > 0.5;
    dualistic_high += dualistic[t] > 0.5;
  }
  std::printf(
      "  steps above 0.5: input 1, standard %d (smoothed), dualistic %d "
      "(extended)\n\n",
      standard_high, dualistic_high);

  // -- (c) frequency domain --------------------------------------------------
  std::printf(
      "Fig 3(c) — latent-spectrum gap (Definition 1) for low- vs "
      "high-variance amplitude spectra (kernel 4, stride 4)\n");
  Rng rng(7);
  auto gap_for = [&](double stddev) {
    double total = 0.0;
    int count = 0;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> amps(16);
      for (double& a : amps) {
        a = std::max(0.01, rng.Gaussian(1.0, stddev));
      }
      const auto latent =
          DualisticConvolve(amps, 4, 4, 7.0, 5.0, DualisticMode::kPeak);
      for (size_t seg = 0; seg < latent.size(); ++seg) {
        for (int j = 0; j < 4; ++j) {
          total += std::fabs(latent[seg] - amps[4 * seg + j]);
          ++count;
        }
      }
    }
    return total / count;
  };
  std::printf("%16s %12s\n", "spectrum stddev", "mean gap");
  for (double stddev : {0.1, 0.3, 0.6, 1.0}) {
    std::printf("%16.1f %12.4f\n", stddev, gap_for(stddev));
  }
  std::printf(
      "  (the gap grows with amplitude variance — anomalous spectra are "
      "harder to reconstruct, Theorem 1)\n");
  return 0;
}
