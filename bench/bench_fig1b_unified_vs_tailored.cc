// Regenerates Fig 1(b): every baseline's F1 on SMD with one unified model
// for 10 services vs one tailored model per service — the motivation for
// MACE (unified models lose on diverse patterns).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const ts::DatasetProfile profile = ts::SmdProfile();
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  const std::vector<ts::ServiceData> group = ts::ServiceGroup(dataset, 0);

  std::printf(
      "Fig 1(b) — unified vs tailored F1 on SMD (10 diverse services)\n");
  std::printf("%-14s %10s %10s %10s\n", "method", "unified", "tailored",
              "drop");
  for (const std::string& method : baselines::NeuralBaselineNames()) {
    auto unified_detector = benchutil::MakeBenchDetector(method, "SMD");
    Result<eval::PrMetrics> unified =
        benchutil::EvaluateUnified(unified_detector.get(), group);
    MACE_CHECK_OK(unified.status());
    Result<eval::PrMetrics> tailored = benchutil::EvaluateTailored(
        [&] { return benchutil::MakeBenchDetector(method, "SMD"); }, group);
    MACE_CHECK_OK(tailored.status());
    std::printf("%-14s %10.3f %10.3f %+10.3f\n", method.c_str(),
                unified->f1, tailored->f1, unified->f1 - tailored->f1);
  }
  std::printf(
      "\npaper: every baseline's unified F1 is substantially below its "
      "tailored F1 on SMD\n");
  return 0;
}
