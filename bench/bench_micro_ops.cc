// Google-benchmark microbenchmarks for the hot substrate operations:
// FFT, context-aware DFT, tensor primitives, dualistic convolution, and
// one full MACE forward/backward step.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/dualistic_conv.h"
#include "core/mace_model.h"
#include "fft/context_aware_dft.h"
#include "fft/fft.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace {

using namespace mace;

void BM_Radix2Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<fft::Complex> data(n);
  for (auto& c : data) c = fft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    std::vector<fft::Complex> work = data;
    fft::Radix2Fft(&work, false);
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Radix2Fft)->Arg(64)->Arg(256)->Arg(1024);

void BM_BluesteinFft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<fft::Complex> data(n);
  for (auto& c : data) c = fft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    std::vector<fft::Complex> work = data;
    fft::BluesteinFft(&work, false);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_BluesteinFft)->Arg(40)->Arg(100);

void BM_AmplitudeSpectrum(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> signal(40);
  for (double& v : signal) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::AmplitudeSpectrum(signal));
  }
}
BENCHMARK(BM_AmplitudeSpectrum);

void BM_ContextAwareProjection(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<int> bases;
  for (int j = 1; j <= k; ++j) bases.push_back(j);
  fft::ContextAwareDft dft(40, bases);
  Rng rng(4);
  std::vector<double> signal(40);
  for (double& v : signal) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dft.Project(signal));
  }
}
BENCHMARK(BM_ContextAwareProjection)->Arg(4)->Arg(12)->Arg(20);

void BM_TensorMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  tensor::Tensor a = tensor::Tensor::RandomGaussian({n, n}, &rng, 0, 1);
  tensor::Tensor b = tensor::Tensor::RandomGaussian({n, n}, &rng, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMul)->Arg(16)->Arg(64);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(6);
  tensor::Tensor x = tensor::Tensor::RandomGaussian({1, 6, 40}, &rng, 0, 1);
  tensor::Tensor w =
      tensor::Tensor::RandomGaussian({8, 6, 4}, &rng, 0, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, tensor::Tensor(), 4));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_DualisticAmplify(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> signal(1024);
  for (double& v : signal) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DualisticAmplify(signal, 5, 7.0, 5.0));
  }
  state.SetItemsProcessed(state.iterations() * signal.size());
}
BENCHMARK(BM_DualisticAmplify);

void BM_MaceTrainStep(benchmark::State& state) {
  Rng rng(8);
  core::MaceConfig config;
  config.num_bases = 18;
  std::vector<int> bases;
  for (int j = 1; j <= 18; ++j) bases.push_back(j);
  const core::ServiceTransforms transforms =
      core::MakeServiceTransforms(40, bases);
  core::MaceModel model(config, 5, 36, &rng);
  nn::Adam adam(model.Parameters(), 1e-3);
  tensor::Tensor window =
      tensor::Tensor::RandomGaussian({5, 40}, &rng, 0.0, 1.0);
  for (auto _ : state) {
    auto out = model.Forward(transforms, window, false);
    adam.ZeroGrad();
    out.loss.Backward();
    adam.Step();
    benchmark::DoNotOptimize(out.loss.item());
  }
}
BENCHMARK(BM_MaceTrainStep);

void BM_MaceInference(benchmark::State& state) {
  Rng rng(9);
  core::MaceConfig config;
  config.num_bases = 18;
  std::vector<int> bases;
  for (int j = 1; j <= 18; ++j) bases.push_back(j);
  const core::ServiceTransforms transforms =
      core::MakeServiceTransforms(40, bases);
  core::MaceModel model(config, 5, 36, &rng);
  tensor::Tensor window =
      tensor::Tensor::RandomGaussian({5, 40}, &rng, 0.0, 1.0);
  for (auto _ : state) {
    auto out = model.Forward(transforms, window, true);
    benchmark::DoNotOptimize(out.step_errors);
  }
}
BENCHMARK(BM_MaceInference);

// -- Observability overhead --------------------------------------------
// The obs instruments sit on the scoring hot path; these benches put a
// number on the per-call cost so BM_MaceInference regressions can be
// separated from instrumentation drift.

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter* counter = obs::Metrics().GetCounter(
      "bench_obs_counter_total", "microbench counter");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram = obs::Metrics().GetHistogram(
      "bench_obs_histogram_seconds", "microbench histogram");
  double v = 1e-6;
  for (auto _ : state) {
    histogram->Observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-6;
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsScopedSpan(benchmark::State& state) {
  obs::Histogram* histogram = obs::Metrics().GetHistogram(
      "bench_obs_span_seconds", "microbench span latency");
  for (auto _ : state) {
    obs::ScopedSpan span("bench_span", histogram);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_ObsScopedSpan);

}  // namespace

BENCHMARK_MAIN();
