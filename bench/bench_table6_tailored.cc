// Regenerates Table VI: baselines train one tailored model per service,
// MACE keeps a single unified model per group of 10 — MACE should stay
// competitive despite the handicap.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mace;
  const std::vector<ts::DatasetProfile> profiles = {
      ts::SmdProfile(), ts::Jd1Profile(), ts::Jd2Profile(),
      ts::SmapProfile()};

  std::vector<std::string> names;
  for (const auto& p : profiles) names.push_back(p.name);
  benchutil::MetricsTable table(names);

  std::vector<std::string> methods = baselines::AllBaselineNames();
  methods.push_back("MACE");

  for (const std::string& method : methods) {
    std::vector<eval::PrMetrics> per_dataset;
    for (const ts::DatasetProfile& profile : profiles) {
      const ts::Dataset dataset = ts::GenerateDataset(profile);
      const std::vector<ts::ServiceData> group =
          ts::ServiceGroup(dataset, 0);
      Result<eval::PrMetrics> avg = Status::Internal("unset");
      if (method == "MACE") {
        // MACE keeps the unified model (same numbers as Table V).
        auto detector = benchutil::MakeBenchDetector("MACE", profile.name);
        avg = benchutil::EvaluateUnified(detector.get(), group);
      } else {
        avg = benchutil::EvaluateTailored(
            [&] {
              return benchutil::MakeBenchDetector(method, profile.name);
            },
            group);
      }
      MACE_CHECK_OK(avg.status());
      per_dataset.push_back(*avg);
      std::fprintf(stderr, "[table6] %s on %s: F1=%.3f\n", method.c_str(),
                   profile.name.c_str(), avg->f1);
    }
    table.AddRow(method == "MACE" ? "MACE (unified)" : method, per_dataset);
  }

  std::printf(
      "Table VI — baselines tailored per service; MACE one unified model "
      "per 10 services\n");
  table.Print();
  return 0;
}
