#ifndef MACE_BENCH_BENCH_UTIL_H_
#define MACE_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/result.h"
#include "core/detector.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "ts/profiles.h"

namespace mace::benchutil {

/// Bench-wide training options: paper hyperparameters with epoch counts
/// sized so every table regenerates in seconds on a laptop.
baselines::TrainOptions DefaultOptions();

/// MACE config for a dataset: per-dataset gamma values in the spirit of
/// the paper's Table IV, on top of DefaultOptions().
core::MaceConfig MaceConfigFor(const std::string& dataset_name);

/// Builds a detector for `method` ("MACE" uses MaceConfigFor(dataset)).
std::unique_ptr<core::Detector> MakeBenchDetector(
    const std::string& method, const std::string& dataset_name);

/// \brief Fits `detector` on the group (unified model) and evaluates every
/// service's test split with point-adjusted best-F1. Returns the macro
/// average; per-service metrics optionally via `per_service`.
Result<eval::PrMetrics> EvaluateUnified(
    core::Detector* detector, const std::vector<ts::ServiceData>& group,
    std::vector<eval::PrMetrics>* per_service = nullptr);

/// \brief Tailored protocol: a fresh detector per service (factory is
/// invoked per service), each fitted and evaluated on that service alone.
Result<eval::PrMetrics> EvaluateTailored(
    const std::function<std::unique_ptr<core::Detector>()>& factory,
    const std::vector<ts::ServiceData>& group,
    std::vector<eval::PrMetrics>* per_service = nullptr);

/// \brief Transfer protocol (Table VIII): `detector` must already be
/// fitted (on another group); every service of `test_group` is scored via
/// ScoreUnseen.
Result<eval::PrMetrics> EvaluateUnseen(
    core::Detector* detector, const std::vector<ts::ServiceData>& test_group,
    std::vector<eval::PrMetrics>* per_service = nullptr);

/// \brief Writes the obs metrics registry — including the
/// `mace_stage_latency_seconds` histograms of all 4 pipeline stages — as
/// JSON to `path`, so BENCH_*.json trajectories can attribute a
/// regression to a specific stage. Every bench binary also honors the
/// `MACE_METRICS_JSON` / `MACE_METRICS_PROM` env vars: when set, the
/// registry is dumped there automatically at process exit.
Status WriteStageTimingJson(const std::string& path);

/// Prints per-stage mean/total latency of the 4-stage pipeline to stderr
/// (one line per stage with a recorded sample).
void PrintStageTimingSummary();

/// Prints "| method | P R F1 | ... |" rows matching the paper's tables.
class MetricsTable {
 public:
  explicit MetricsTable(std::vector<std::string> dataset_names);

  void AddRow(const std::string& method,
              const std::vector<eval::PrMetrics>& per_dataset);
  void Print() const;

 private:
  std::vector<std::string> datasets_;
  struct Row {
    std::string method;
    std::vector<eval::PrMetrics> metrics;
  };
  std::vector<Row> rows_;
};

}  // namespace mace::benchutil

#endif  // MACE_BENCH_BENCH_UTIL_H_
