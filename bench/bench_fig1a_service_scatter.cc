// Regenerates Fig 1(a): each service's normal data compressed to a 2-D
// point; on SMD-like data the points scatter widely (diverse normal
// patterns). Prints the coordinates and the scatter statistics.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/pca.h"
#include "fft/fft.h"
#include "ts/scaler.h"

int main() {
  using namespace mace;
  std::printf(
      "Fig 1(a) — services projected to 2-D (mean window spectrum -> "
      "PCA)\n");
  for (const std::string name : {"SMD", "J-D2"}) {
    const ts::DatasetProfile profile =
        name == "SMD" ? ts::SmdProfile() : ts::Jd2Profile();
    const ts::Dataset dataset = ts::GenerateDataset(profile);

    // Represent each service by its mean training-window amplitude
    // spectrum (feature-averaged) — a compact fingerprint of its pattern.
    std::vector<std::vector<double>> fingerprints;
    for (const ts::ServiceData& svc : dataset.services) {
      ts::StandardScaler scaler;
      scaler.Fit(svc.train);
      const ts::TimeSeries train = scaler.Transform(svc.train);
      std::vector<double> fingerprint(21, 0.0);
      int count = 0;
      for (size_t start = 0; start + 40 <= train.length(); start += 40) {
        for (int f = 0; f < train.num_features(); ++f) {
          std::vector<double> window(40);
          for (int t = 0; t < 40; ++t) {
            window[t] = train.value(start + t, f);
          }
          const auto amps = fft::AmplitudeSpectrum(window);
          for (size_t j = 0; j < amps.size(); ++j) {
            fingerprint[j] += amps[j];
          }
          ++count;
        }
      }
      for (double& v : fingerprint) v /= count;
      fingerprints.push_back(std::move(fingerprint));
    }
    auto projection = eval::Pca(fingerprints, 2);
    MACE_CHECK_OK(projection.status());
    std::printf("\n%s services (x, y):\n", name.c_str());
    double spread = 0.0;
    for (size_t s = 0; s < projection->points.size(); ++s) {
      std::printf("  svc%-3zu %8.3f %8.3f\n", s, projection->points[s][0],
                  projection->points[s][1]);
      spread += projection->points[s][0] * projection->points[s][0] +
                projection->points[s][1] * projection->points[s][1];
    }
    std::printf("  mean squared distance from origin: %.3f\n",
                spread / projection->points.size());
  }
  std::printf(
      "\npaper: SMD services scatter randomly (no shared normal pattern); "
      "expect SMD spread >> J-D2 spread\n");
  return 0;
}
