// Inference fast-path throughput: single-thread ScoreWindow under the
// graph-building (grad) tensor mode vs the no-grad inference mode, the
// batched op-graph ScoreWindowBatch path, and the fused scoring kernel
// on both of its arms (forced-scalar and SIMD). All paths run in the
// same process on the same fitted weights (same seed), so the speedups
// are apples-to-apples; score equality is cross-checked before timing
// (bit-for-bit for the op-graph paths and the fused scalar arm, within
// the pinned SIMD tolerance for the vector arm). Emits
// BENCH_score_fastpath.json (or --json-out <path>) for trajectory
// tracking, with the pinned canonical config recorded in the JSON.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "eval/profiler.h"
#include "kernel/fused_kernel.h"
#include "ts/profiles.h"

namespace {

// SIMD scores may differ from the scalar reference by reassociated
// rounding only; these bounds are pinned in tests/score_fastpath_test.cc.
constexpr double kSimdRelTol = 1e-9;
constexpr double kSimdAbsTol = 1e-11;

/// Deterministic pseudo-scaled windows, distinct per index so caching
/// could not fake throughput.
std::vector<std::vector<double>> MakeRows(int window, int features,
                                          int salt) {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window),
      std::vector<double>(static_cast<size_t>(features)));
  for (int t = 0; t < window; ++t) {
    for (int f = 0; f < features; ++f) {
      rows[static_cast<size_t>(t)][static_cast<size_t>(f)] =
          std::sin(0.37 * (t + 1) * (f + 1) + salt) + 0.01 * (t % 5);
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;

  std::string json_out = "BENCH_score_fastpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json-out <path>]\n", argv[0]);
      return 2;
    }
  }

  constexpr int kWindows = 512;
  constexpr int kBatch = 8;

  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 2;
  profile.test_length = 256;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig grad_config;
  grad_config.epochs = 2;
  grad_config.score_no_grad = false;
  grad_config.score_batch = 1;
  core::MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  // Same seed => identical fitted weights; only the scoring mode differs.
  core::MaceDetector grad_mode(grad_config);
  MACE_CHECK_OK(grad_mode.Fit(dataset.services));
  grad_mode.set_score_engine(core::MaceDetector::ScoreEngine::kOpGraph);
  core::MaceDetector no_grad(nograd_config);
  MACE_CHECK_OK(no_grad.Fit(dataset.services));
  no_grad.set_score_engine(core::MaceDetector::ScoreEngine::kOpGraph);
  core::MaceDetector fused(nograd_config);
  MACE_CHECK_OK(fused.Fit(dataset.services));

  const bool simd = kernel::SimdSupported();
  const int window = grad_config.window;
  const int features = static_cast<int>(
      dataset.services[0].test.num_features());
  std::vector<std::vector<std::vector<double>>> inputs;
  for (int i = 0; i < kWindows; ++i) {
    inputs.push_back(MakeRows(window, features, i));
  }

  // Equality first: a fast path that changes scores is not a fast path.
  // The no-grad mode and the fused scalar arm must match the grad-mode
  // op graph bit for bit; the SIMD arm must stay inside the pinned
  // tolerance.
  for (int i = 0; i + kBatch <= kWindows; i += 61) {
    std::vector<std::vector<std::vector<double>>> group(
        inputs.begin() + i, inputs.begin() + i + kBatch);
    auto a = grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)]);
    auto b = no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)]);
    auto ref = no_grad.ScoreWindowBatch(0, group);
    MACE_CHECK_OK(a.status());
    MACE_CHECK_OK(b.status());
    MACE_CHECK_OK(ref.status());
    for (size_t t = 0; t < a->size(); ++t) {
      MACE_CHECK((*a)[t] == (*b)[t])
          << "no-grad path diverged at window " << i << " step " << t;
      MACE_CHECK((*a)[t] == (*ref)[0][t])
          << "op-graph batch diverged at window " << i << " step " << t;
    }
    fused.set_kernel_backend(kernel::Backend::kScalar);
    auto scalar = fused.ScoreWindowBatch(0, group);
    MACE_CHECK_OK(scalar.status());
    for (size_t w = 0; w < ref->size(); ++w) {
      for (size_t t = 0; t < (*ref)[w].size(); ++t) {
        MACE_CHECK((*scalar)[w][t] == (*ref)[w][t])
            << "fused scalar diverged at window " << (i + w) << " step "
            << t;
      }
    }
    if (simd) {
      fused.set_kernel_backend(kernel::Backend::kSimd);
      auto vec = fused.ScoreWindowBatch(0, group);
      MACE_CHECK_OK(vec.status());
      for (size_t w = 0; w < ref->size(); ++w) {
        for (size_t t = 0; t < (*ref)[w].size(); ++t) {
          const double bound =
              kSimdAbsTol + kSimdRelTol * std::abs((*ref)[w][t]);
          MACE_CHECK(std::abs((*vec)[w][t] - (*ref)[w][t]) <= bound)
              << "fused SIMD outside tolerance at window " << (i + w)
              << " step " << t;
        }
      }
    }
  }

  // Batch groups are assembled once, outside the timed regions: the
  // bench compares scoring paths, and the deep copy of a window group
  // is identical work on every batched path (it would only dilute the
  // reported ratios toward 1).
  std::vector<std::vector<std::vector<std::vector<double>>>> groups;
  for (int i = 0; i < kWindows; i += kBatch) {
    groups.emplace_back(inputs.begin() + i,
                        inputs.begin() + std::min(i + kBatch, kWindows));
  }

  // Warm-up covers metric registration and buffer-pool fill.
  std::vector<std::vector<std::vector<double>>> chunk(
      inputs.begin(), inputs.begin() + kBatch);
  for (int i = 0; i < 8; ++i) {
    MACE_CHECK_OK(
        grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)]).status());
    MACE_CHECK_OK(
        no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)]).status());
  }
  MACE_CHECK_OK(no_grad.ScoreWindowBatch(0, chunk).status());
  for (const kernel::Backend backend :
       {kernel::Backend::kScalar, kernel::Backend::kSimd}) {
    fused.set_kernel_backend(backend);
    MACE_CHECK_OK(fused.ScoreWindowBatch(0, chunk).status());
  }

  // The paths alternate in kSlice-window slices, accumulating per-path
  // wall time: machine-wide disturbances (noisy neighbours, clock
  // throttling) then hit every path in the same proportion instead of
  // silently skewing the reported ratio.
  constexpr int kSlice = 64;
  constexpr int kPasses = 3;
  double grad_sec = 0.0, nograd_sec = 0.0, batched_sec = 0.0;
  double fused_scalar_sec = 0.0, fused_simd_sec = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (int start = 0; start < kWindows; start += kSlice) {
      const int stop = std::min(start + kSlice, kWindows);
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; ++i) {
          MACE_CHECK_OK(
              grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)])
                  .status());
        }
        grad_sec += watch.ElapsedSeconds();
      }
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; ++i) {
          MACE_CHECK_OK(
              no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)])
                  .status());
        }
        nograd_sec += watch.ElapsedSeconds();
      }
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; i += kBatch) {
          MACE_CHECK_OK(
              no_grad
                  .ScoreWindowBatch(0, groups[static_cast<size_t>(i / kBatch)])
                  .status());
        }
        batched_sec += watch.ElapsedSeconds();
      }
      {
        fused.set_kernel_backend(kernel::Backend::kScalar);
        eval::StopWatch watch;
        for (int i = start; i < stop; i += kBatch) {
          MACE_CHECK_OK(
              fused
                  .ScoreWindowBatch(0, groups[static_cast<size_t>(i / kBatch)])
                  .status());
        }
        fused_scalar_sec += watch.ElapsedSeconds();
      }
      if (simd) {
        fused.set_kernel_backend(kernel::Backend::kSimd);
        eval::StopWatch watch;
        for (int i = start; i < stop; i += kBatch) {
          MACE_CHECK_OK(
              fused
                  .ScoreWindowBatch(0, groups[static_cast<size_t>(i / kBatch)])
                  .status());
        }
        fused_simd_sec += watch.ElapsedSeconds();
      }
    }
  }
  const double total = static_cast<double>(kPasses) * kWindows;
  const double grad_wps = total / grad_sec;
  const double nograd_wps = total / nograd_sec;
  const double batched_wps = total / batched_sec;
  const double fused_scalar_wps = total / fused_scalar_sec;
  const double fused_simd_wps = simd ? total / fused_simd_sec : 0.0;
  const double fused_best_wps =
      simd ? std::max(fused_scalar_wps, fused_simd_wps) : fused_scalar_wps;

  std::printf(
      "Score fast path — %d windows of [%d x %d], single thread\n",
      kWindows, window, features);
  std::printf("%-30s %14s %10s\n", "path", "windows/s", "speedup");
  std::printf("%-30s %14.0f %9.2fx\n", "grad-mode ScoreWindow", grad_wps,
              1.0);
  std::printf("%-30s %14.0f %9.2fx\n", "no-grad ScoreWindow", nograd_wps,
              nograd_wps / grad_wps);
  std::printf("%-30s %14.0f %9.2fx\n", "op-graph ScoreWindowBatch(8)",
              batched_wps, batched_wps / grad_wps);
  std::printf("%-30s %14.0f %9.2fx\n", "fused-scalar batch(8)",
              fused_scalar_wps, fused_scalar_wps / grad_wps);
  if (simd) {
    std::printf("%-30s %14.0f %9.2fx\n", "fused-SIMD batch(8)",
                fused_simd_wps, fused_simd_wps / grad_wps);
  } else {
    std::printf("%-30s %14s\n", "fused-SIMD batch(8)", "unavailable");
  }
  std::printf("fused vs op-graph batched: %.2fx\n",
              fused_best_wps / batched_wps);

  {
    std::ofstream out(json_out, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"score_fastpath\",\n"
        << "  \"config\": {\n"
        << "    \"windows\": " << kWindows << ",\n"
        << "    \"window\": " << window << ",\n"
        << "    \"features\": " << features << ",\n"
        << "    \"batch\": " << kBatch << ",\n"
        << "    \"epochs\": " << grad_config.epochs << ",\n"
        << "    \"num_bases\": " << grad_config.num_bases << ",\n"
        << "    \"fitted_services\": " << profile.num_services << ",\n"
        << "    \"passes\": " << kPasses << ",\n"
        << "    \"simd\": " << (simd ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"grad_windows_per_sec\": " << grad_wps << ",\n"
        << "  \"nograd_windows_per_sec\": " << nograd_wps << ",\n"
        << "  \"batched_windows_per_sec\": " << batched_wps << ",\n"
        << "  \"fused_scalar_windows_per_sec\": " << fused_scalar_wps
        << ",\n"
        << "  \"fused_simd_windows_per_sec\": " << fused_simd_wps << ",\n"
        << "  \"nograd_speedup\": " << nograd_wps / grad_wps << ",\n"
        << "  \"batched_speedup\": " << batched_wps / grad_wps << ",\n"
        << "  \"fused_scalar_speedup\": " << fused_scalar_wps / grad_wps
        << ",\n"
        << "  \"fused_simd_speedup\": " << fused_simd_wps / grad_wps
        << ",\n"
        << "  \"fused_vs_opgraph_batched\": " << fused_best_wps / batched_wps
        << "\n"
        << "}\n";
  }
  std::printf("wrote %s\n", json_out.c_str());
  return 0;
}
