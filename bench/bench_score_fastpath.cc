// Inference fast-path throughput: single-thread ScoreWindow under the
// graph-building (grad) tensor mode vs the no-grad inference mode, and
// the batched ScoreWindowBatch path on top. All three run in the same
// process on the same fitted weights (same seed), so the speedups are
// apples-to-apples; score equality is cross-checked bit-for-bit before
// timing. Emits BENCH_score_fastpath.json for trajectory tracking.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "eval/profiler.h"
#include "ts/profiles.h"

namespace {

/// Deterministic pseudo-scaled windows, distinct per index so caching
/// could not fake throughput.
std::vector<std::vector<double>> MakeRows(int window, int features,
                                          int salt) {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(window),
      std::vector<double>(static_cast<size_t>(features)));
  for (int t = 0; t < window; ++t) {
    for (int f = 0; f < features; ++f) {
      rows[static_cast<size_t>(t)][static_cast<size_t>(f)] =
          std::sin(0.37 * (t + 1) * (f + 1) + salt) + 0.01 * (t % 5);
    }
  }
  return rows;
}

}  // namespace

int main() {
  using namespace mace;

  constexpr int kWindows = 512;
  constexpr int kBatch = 8;

  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 2;
  profile.test_length = 256;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig grad_config;
  grad_config.epochs = 2;
  grad_config.score_no_grad = false;
  grad_config.score_batch = 1;
  core::MaceConfig nograd_config = grad_config;
  nograd_config.score_no_grad = true;

  // Same seed => identical fitted weights; only the scoring mode differs.
  core::MaceDetector grad_mode(grad_config);
  MACE_CHECK_OK(grad_mode.Fit(dataset.services));
  core::MaceDetector no_grad(nograd_config);
  MACE_CHECK_OK(no_grad.Fit(dataset.services));

  const int window = grad_config.window;
  const int features = static_cast<int>(
      dataset.services[0].test.num_features());
  std::vector<std::vector<std::vector<double>>> inputs;
  for (int i = 0; i < kWindows; ++i) {
    inputs.push_back(MakeRows(window, features, i));
  }

  // Equality first: a fast path that changes scores is not a fast path.
  for (int i = 0; i < kWindows; i += 61) {
    auto a = grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)]);
    auto b = no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)]);
    MACE_CHECK_OK(a.status());
    MACE_CHECK_OK(b.status());
    for (size_t t = 0; t < a->size(); ++t) {
      MACE_CHECK((*a)[t] == (*b)[t])
          << "fast path diverged at window " << i << " step " << t;
    }
  }

  // Warm-up covers metric registration and buffer-pool fill.
  std::vector<std::vector<std::vector<double>>> chunk(
      inputs.begin(), inputs.begin() + kBatch);
  for (int i = 0; i < 8; ++i) {
    MACE_CHECK_OK(
        grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)]).status());
    MACE_CHECK_OK(
        no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)]).status());
  }
  MACE_CHECK_OK(no_grad.ScoreWindowBatch(0, chunk).status());

  // The three paths alternate in kSlice-window slices, accumulating
  // per-path wall time: machine-wide disturbances (noisy neighbours,
  // clock throttling) then hit every path in the same proportion instead
  // of silently skewing the reported ratio.
  constexpr int kSlice = 64;
  constexpr int kPasses = 3;
  double grad_sec = 0.0, nograd_sec = 0.0, batched_sec = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (int start = 0; start < kWindows; start += kSlice) {
      const int stop = std::min(start + kSlice, kWindows);
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; ++i) {
          MACE_CHECK_OK(
              grad_mode.ScoreWindow(0, inputs[static_cast<size_t>(i)])
                  .status());
        }
        grad_sec += watch.ElapsedSeconds();
      }
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; ++i) {
          MACE_CHECK_OK(
              no_grad.ScoreWindow(0, inputs[static_cast<size_t>(i)])
                  .status());
        }
        nograd_sec += watch.ElapsedSeconds();
      }
      {
        eval::StopWatch watch;
        for (int i = start; i < stop; i += kBatch) {
          chunk.assign(inputs.begin() + i,
                       inputs.begin() + std::min(i + kBatch, stop));
          MACE_CHECK_OK(no_grad.ScoreWindowBatch(0, chunk).status());
        }
        batched_sec += watch.ElapsedSeconds();
      }
    }
  }
  const double total = static_cast<double>(kPasses) * kWindows;
  const double grad_wps = total / grad_sec;
  const double nograd_wps = total / nograd_sec;
  const double batched_wps = total / batched_sec;

  const double nograd_speedup = nograd_wps / grad_wps;
  const double batched_speedup = batched_wps / grad_wps;
  std::printf(
      "Score fast path — %d windows of [%d x %d], single thread\n",
      kWindows, window, features);
  std::printf("%-28s %14s %10s\n", "path", "windows/s", "speedup");
  std::printf("%-28s %14.0f %9.2fx\n", "grad-mode ScoreWindow", grad_wps,
              1.0);
  std::printf("%-28s %14.0f %9.2fx\n", "no-grad ScoreWindow", nograd_wps,
              nograd_speedup);
  std::printf("%-28s %14.0f %9.2fx\n", "no-grad ScoreWindowBatch(8)",
              batched_wps, batched_speedup);

  {
    std::ofstream out("BENCH_score_fastpath.json", std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"score_fastpath\",\n"
        << "  \"windows\": " << kWindows << ",\n"
        << "  \"window\": " << window << ",\n"
        << "  \"features\": " << features << ",\n"
        << "  \"batch\": " << kBatch << ",\n"
        << "  \"grad_windows_per_sec\": " << grad_wps << ",\n"
        << "  \"nograd_windows_per_sec\": " << nograd_wps << ",\n"
        << "  \"batched_windows_per_sec\": " << batched_wps << ",\n"
        << "  \"nograd_speedup\": " << nograd_speedup << ",\n"
        << "  \"batched_speedup\": " << batched_speedup << "\n"
        << "}\n";
  }
  std::printf("wrote BENCH_score_fastpath.json\n");
  return 0;
}
