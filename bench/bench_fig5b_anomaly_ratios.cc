// Regenerates Fig 5(b): per dataset, the share of anomalous steps that
// belong to point anomalies vs context (segment) anomalies, plus the
// normal-step ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "ts/generator.h"

int main() {
  using namespace mace;
  std::printf(
      "Fig 5(b) — point / context anomaly / normal step ratios per "
      "dataset\n");
  std::printf("%-8s %10s %10s %10s\n", "dataset", "point", "context",
              "normal");
  for (const ts::DatasetProfile& profile : ts::AllProfiles()) {
    // Re-run the injection bookkeeping to classify each anomalous step.
    size_t point_steps = 0, context_steps = 0, total_steps = 0;
    for (int s = 0; s < profile.num_services; ++s) {
      Rng rng(profile.seed + 1000003ULL * static_cast<uint64_t>(s + 1));
      const ts::NormalPattern pattern =
          ts::SamplePattern(profile, s, &rng);
      ts::ServiceData service;
      service.train = ts::GenerateNormal(pattern, profile.train_length,
                                         0, &rng);
      service.test = ts::GenerateNormal(pattern, profile.test_length,
                                        profile.train_length, &rng);
      ts::AnomalyInjectionConfig inject;
      inject.anomaly_ratio = profile.anomaly_ratio;
      inject.point_fraction = profile.point_fraction;
      inject.min_segment = profile.min_segment;
      inject.max_segment = profile.max_segment;
      const auto events =
          ts::InjectAnomalies(inject, pattern, &service.test, &rng);
      for (const ts::AnomalyEvent& event : events) {
        if (ts::IsPointAnomaly(event.kind)) {
          point_steps += event.length;
        } else {
          context_steps += event.length;
        }
      }
      total_steps += profile.test_length;
    }
    const double total = static_cast<double>(total_steps);
    std::printf("%-8s %10.4f %10.4f %10.4f\n", profile.name.c_str(),
                point_steps / total, context_steps / total,
                1.0 - (point_steps + context_steps) / total);
  }
  std::printf(
      "\npaper: SMAP and MC carry the largest point-anomaly shares; "
      "J-D2 has the largest total anomaly ratio\n");
  return 0;
}
