// The paper's S2 efficiency claim in isolation: frequency-domain windows
// carry no temporal dependency, so MACE inference parallelizes per window.
// Prints scoring throughput vs worker count (a recurrent model cannot do
// this across time steps).

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/mace_detector.h"
#include "eval/profiler.h"

int main() {
  using namespace mace;
  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 4;
  profile.test_length = 4000;  // long series: plenty of windows
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Parallel scoring — MACE inference throughput vs worker threads "
      "(%u hardware core%s)\n",
      cores, cores == 1 ? "" : "s");
  std::printf("%8s %12s %12s %10s\n", "threads", "seconds", "windows/s",
              "speedup");
  double base_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::MaceConfig config;
    config.epochs = 2;
    config.score_threads = threads;
    core::MaceDetector detector(config);
    MACE_CHECK_OK(detector.Fit(dataset.services));
    // Warm-up + measure.
    MACE_CHECK_OK(detector.Score(0, dataset.services[0].test).status());
    eval::StopWatch watch;
    size_t windows = 0;
    for (size_t s = 0; s < dataset.services.size(); ++s) {
      MACE_CHECK_OK(
          detector.Score(static_cast<int>(s), dataset.services[s].test)
              .status());
      windows += (dataset.services[s].test.length() - config.window) /
                     config.score_stride +
                 2;
    }
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) base_seconds = seconds;
    std::printf("%8d %12.3f %12.0f %9.2fx\n", threads, seconds,
                static_cast<double>(windows) / seconds,
                base_seconds / seconds);
  }
  std::printf(
      "\npaper: eliminating temporal dependencies enables fine-grained "
      "parallelism — throughput scales with workers up to the core count "
      "(on a single-core host the rows only show the thread overhead)\n");
  return 0;
}
