// Anomaly-history subsystem throughput: appends a synthetic fleet of 10k
// tenants into the HistoryStore, then times the fleet queries (top-K,
// rate series, correlation) and the snapshot round-trip. Targets: >= 1M
// appends/s, top-K over 10k tenants < 10 ms. Emits BENCH_history.json.
//
// Deterministic workload: tenant i's score at step t follows a fixed
// formula (no RNG), with a score spike of width ~i%7 so the severity
// ranking and correlation have real structure to find.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "eval/profiler.h"
#include "history/query.h"
#include "history/snapshot.h"
#include "history/store.h"

int main() {
  using namespace mace;

  constexpr size_t kTenants = 10000;
  constexpr size_t kStepsPerTenant = 200;
  constexpr size_t kCapacity = 256;
  constexpr double kThreshold = 3.0;
  constexpr size_t kTopK = 20;
  constexpr int kQueryReps = 5;

  history::HistoryStore store(
      history::HistoryConfig{kCapacity, kThreshold});
  std::vector<history::HistoryStore::TenantId> ids(kTenants);
  for (size_t i = 0; i < kTenants; ++i) {
    ids[i] = store.Intern("tenant-" + std::to_string(i));
  }

  // Appends: every tenant scores a smooth baseline with a spike whose
  // height and phase depend on the tenant, so ~1/8 of records are
  // anomalous and nearby tenant groups spike together.
  eval::StopWatch append_watch;
  for (size_t t = 0; t < kStepsPerTenant; ++t) {
    for (size_t i = 0; i < kTenants; ++i) {
      const double base =
          1.0 + std::sin(0.1 * static_cast<double>(t + i % 16));
      const bool spiking = (t / 8) % 8 == i % 7;
      const double score =
          spiking ? 4.0 + 0.05 * static_cast<double>(i % 32) : base;
      store.Append(ids[i], static_cast<int64_t>(t), score);
    }
  }
  const double append_seconds = append_watch.ElapsedSeconds();
  const size_t total_appends = kTenants * kStepsPerTenant;
  const double appends_per_sec =
      static_cast<double>(total_appends) / append_seconds;

  const int64_t t0 = 0;
  const int64_t t1 = static_cast<int64_t>(kStepsPerTenant) - 1;

  // Queries: min-of-N so one scheduler hiccup does not set the record.
  double topk_seconds = 1e30;
  size_t topk_rows = 0;
  for (int rep = 0; rep < kQueryReps; ++rep) {
    eval::StopWatch watch;
    const auto ranks = history::TopTenants(store, t0, t1, kTopK);
    topk_seconds = std::min(topk_seconds, watch.ElapsedSeconds());
    topk_rows = ranks.size();
    MACE_CHECK(!ranks.empty() && ranks.front().severity > 0)
        << "top-K found no anomalous tenants";
  }

  double rate_seconds = 1e30;
  for (int rep = 0; rep < kQueryReps; ++rep) {
    eval::StopWatch watch;
    const auto series =
        history::AnomalyRateSeries(store, "tenant-0", t0, t1, 8);
    MACE_CHECK_OK(series.status());
    rate_seconds = std::min(rate_seconds, watch.ElapsedSeconds());
  }

  double correlate_seconds = 1e30;
  size_t correlate_pairs = 0;
  size_t correlate_clusters = 0;
  for (int rep = 0; rep < kQueryReps; ++rep) {
    history::CorrelationOptions options;
    options.window_width = 8;
    options.min_jaccard = 0.5;
    options.max_tenants = 256;
    eval::StopWatch watch;
    const auto report = history::CorrelateAnomalies(store, t0, t1, options);
    MACE_CHECK_OK(report.status());
    correlate_seconds = std::min(correlate_seconds, watch.ElapsedSeconds());
    correlate_pairs = report->pairs.size();
    correlate_clusters = report->clusters.size();
  }

  // Snapshot round-trip.
  const std::string snapshot_path = "BENCH_history.snap";
  eval::StopWatch write_watch;
  MACE_CHECK_OK(history::WriteSnapshot(store, snapshot_path, kThreshold));
  const double snapshot_write_seconds = write_watch.ElapsedSeconds();
  eval::StopWatch open_watch;
  auto reader = history::SnapshotReader::Open(snapshot_path);
  MACE_CHECK_OK(reader.status());
  const double snapshot_open_seconds = open_watch.ElapsedSeconds();
  MACE_CHECK(reader->NumTenants() == kTenants) << "snapshot lost tenants";
  double snapshot_topk_seconds = 1e30;
  for (int rep = 0; rep < kQueryReps; ++rep) {
    eval::StopWatch watch;
    const auto ranks = history::TopTenants(*reader, t0, t1, kTopK);
    snapshot_topk_seconds =
        std::min(snapshot_topk_seconds, watch.ElapsedSeconds());
    MACE_CHECK(ranks.size() == topk_rows)
        << "snapshot top-K disagrees with the live store";
  }
  std::remove(snapshot_path.c_str());

  std::printf(
      "History store — %zu tenants x %zu steps (capacity %zu)\n"
      "%-28s %12.3f s %14.0f /s (target >= 1M)\n"
      "%-28s %12.3f ms (target < 10 ms, %zu rows)\n"
      "%-28s %12.3f ms\n"
      "%-28s %12.3f ms (%zu pairs, %zu clusters)\n"
      "%-28s %12.3f ms write, %.3f ms open\n"
      "%-28s %12.3f ms\n",
      kTenants, kStepsPerTenant, kCapacity, "appends", append_seconds,
      appends_per_sec, "top-K (live)", topk_seconds * 1e3, topk_rows,
      "rate series", rate_seconds * 1e3, "correlate",
      correlate_seconds * 1e3, correlate_pairs, correlate_clusters,
      "snapshot", snapshot_write_seconds * 1e3,
      snapshot_open_seconds * 1e3, "top-K (snapshot)",
      snapshot_topk_seconds * 1e3);

  {
    std::ofstream out("BENCH_history.json", std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"history\",\n"
        << "  \"config\": {\n"
        << "    \"tenants\": " << kTenants << ",\n"
        << "    \"steps_per_tenant\": " << kStepsPerTenant << ",\n"
        << "    \"capacity_per_tenant\": " << kCapacity << ",\n"
        << "    \"anomaly_threshold\": " << kThreshold << ",\n"
        << "    \"top_k\": " << kTopK << "\n"
        << "  },\n"
        << "  \"appends_per_sec\": " << appends_per_sec << ",\n"
        << "  \"topk_ms\": " << topk_seconds * 1e3 << ",\n"
        << "  \"rate_ms\": " << rate_seconds * 1e3 << ",\n"
        << "  \"correlate_ms\": " << correlate_seconds * 1e3 << ",\n"
        << "  \"snapshot_write_ms\": " << snapshot_write_seconds * 1e3
        << ",\n"
        << "  \"snapshot_open_ms\": " << snapshot_open_seconds * 1e3
        << ",\n"
        << "  \"snapshot_topk_ms\": " << snapshot_topk_seconds * 1e3 << "\n"
        << "}\n";
  }
  std::printf("BENCH_history.json written\n");
  return 0;
}
