// Regenerates Fig 5(a): per dataset, the distribution of pairwise KL
// divergences between services' (KDE-estimated) value distributions —
// SMD-like data is the most diverse, J-D2-like the most similar.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/math_utils.h"

int main() {
  using namespace mace;
  std::printf(
      "Fig 5(a) — pairwise KL divergence between services in a training "
      "group (KDE of feature-0 values)\n");
  std::printf("%-8s %8s %8s %8s %8s\n", "dataset", "min", "median", "mean",
              "max");
  for (const ts::DatasetProfile& profile : ts::AllProfiles()) {
    const ts::Dataset dataset = ts::GenerateDataset(profile);
    const auto group = ts::ServiceGroup(dataset, 0);

    std::vector<KernelDensity> densities;
    for (const ts::ServiceData& svc : group) {
      // Subsample training values for a fast KDE.
      std::vector<double> samples;
      for (size_t t = 0; t < svc.train.length(); t += 4) {
        samples.push_back(svc.train.value(t, 0));
      }
      auto kde = KernelDensity::Fit(std::move(samples));
      MACE_CHECK_OK(kde.status());
      densities.push_back(std::move(*kde));
    }
    std::vector<double> divergences;
    for (size_t i = 0; i < densities.size(); ++i) {
      for (size_t j = 0; j < densities.size(); ++j) {
        if (i == j) continue;
        divergences.push_back(
            KlDivergence(densities[i], densities[j], 128));
      }
    }
    std::sort(divergences.begin(), divergences.end());
    const double mean = Mean(divergences);
    std::printf("%-8s %8.3f %8.3f %8.3f %8.3f\n", profile.name.c_str(),
                divergences.front(),
                divergences[divergences.size() / 2], mean,
                divergences.back());
  }
  std::printf(
      "\npaper: SMD has the widest KL distribution (most diverse normal "
      "patterns), J-D2 the narrowest\n");
  return 0;
}
