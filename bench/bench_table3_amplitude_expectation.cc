// Regenerates Table III: expectation of spectrum amplitudes for anomalies
// vs normalities — the premise behind Assumption 1 (anomalies shift
// amplitudes upward).

#include <cstdio>

#include "bench/bench_util.h"
#include "fft/fft.h"
#include "fft/spectrum.h"
#include "ts/scaler.h"

int main() {
  using namespace mace;
  std::printf(
      "Table III — expectation of amplitudes (anomalous vs normal "
      "windows)\n");
  std::printf("%-8s %12s %12s %8s\n", "dataset", "anomaly", "normality",
              "ratio");
  for (const ts::DatasetProfile& profile : ts::AllProfiles()) {
    const ts::Dataset dataset = ts::GenerateDataset(profile);
    std::vector<std::vector<double>> normal, anomalous;
    for (const ts::ServiceData& svc : dataset.services) {
      ts::StandardScaler scaler;
      scaler.Fit(svc.train);
      const ts::TimeSeries test = scaler.Transform(svc.test);
      for (size_t start = 0; start + 40 <= test.length(); start += 20) {
        bool any = false;
        for (size_t t = start; t < start + 40; ++t) {
          any |= test.is_anomaly(t);
        }
        for (int f = 0; f < test.num_features(); ++f) {
          std::vector<double> window(40);
          for (int t = 0; t < 40; ++t) window[t] = test.value(start + t, f);
          (any ? anomalous : normal)
              .push_back(fft::AmplitudeSpectrum(window));
        }
      }
    }
    const auto a = fft::PooledAmplitudeMoments(anomalous);
    const auto n = fft::PooledAmplitudeMoments(normal);
    std::printf("%-8s %12.4f %12.4f %8.2f\n", profile.name.c_str(), a.mean,
                n.mean, a.mean / n.mean);
  }
  std::printf(
      "\npaper (SMD/J-D1/J-D2): anomaly 0.36/0.74/0.81, "
      "normality 0.23/0.72/0.77 — anomaly expectation higher everywhere\n");
  return 0;
}
