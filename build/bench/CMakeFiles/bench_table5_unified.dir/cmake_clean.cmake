file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_unified.dir/bench_table5_unified.cc.o"
  "CMakeFiles/bench_table5_unified.dir/bench_table5_unified.cc.o.d"
  "bench_table5_unified"
  "bench_table5_unified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_unified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
