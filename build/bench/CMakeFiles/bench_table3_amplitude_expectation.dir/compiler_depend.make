# Empty compiler generated dependencies file for bench_table3_amplitude_expectation.
# This may be replaced when dependencies are built.
