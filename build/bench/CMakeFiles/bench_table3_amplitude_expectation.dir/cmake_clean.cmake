file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_amplitude_expectation.dir/bench_table3_amplitude_expectation.cc.o"
  "CMakeFiles/bench_table3_amplitude_expectation.dir/bench_table3_amplitude_expectation.cc.o.d"
  "bench_table3_amplitude_expectation"
  "bench_table3_amplitude_expectation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_amplitude_expectation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
