# Empty dependencies file for bench_table7_mc.
# This may be replaced when dependencies are built.
