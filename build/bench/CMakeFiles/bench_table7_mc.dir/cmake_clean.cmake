file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_mc.dir/bench_table7_mc.cc.o"
  "CMakeFiles/bench_table7_mc.dir/bench_table7_mc.cc.o.d"
  "bench_table7_mc"
  "bench_table7_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
