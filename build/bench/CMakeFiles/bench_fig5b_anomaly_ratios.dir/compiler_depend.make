# Empty compiler generated dependencies file for bench_fig5b_anomaly_ratios.
# This may be replaced when dependencies are built.
