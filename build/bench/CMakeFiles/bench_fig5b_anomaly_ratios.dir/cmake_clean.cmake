file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_anomaly_ratios.dir/bench_fig5b_anomaly_ratios.cc.o"
  "CMakeFiles/bench_fig5b_anomaly_ratios.dir/bench_fig5b_anomaly_ratios.cc.o.d"
  "bench_fig5b_anomaly_ratios"
  "bench_fig5b_anomaly_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_anomaly_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
