file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b_unified_vs_tailored.dir/bench_fig1b_unified_vs_tailored.cc.o"
  "CMakeFiles/bench_fig1b_unified_vs_tailored.dir/bench_fig1b_unified_vs_tailored.cc.o.d"
  "bench_fig1b_unified_vs_tailored"
  "bench_fig1b_unified_vs_tailored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_unified_vs_tailored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
