# Empty compiler generated dependencies file for bench_fig1b_unified_vs_tailored.
# This may be replaced when dependencies are built.
