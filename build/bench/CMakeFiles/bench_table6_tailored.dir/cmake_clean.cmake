file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_tailored.dir/bench_table6_tailored.cc.o"
  "CMakeFiles/bench_table6_tailored.dir/bench_table6_tailored.cc.o.d"
  "bench_table6_tailored"
  "bench_table6_tailored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_tailored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
