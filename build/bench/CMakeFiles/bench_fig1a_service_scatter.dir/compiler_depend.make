# Empty compiler generated dependencies file for bench_fig1a_service_scatter.
# This may be replaced when dependencies are built.
