# Empty dependencies file for bench_fig5a_pattern_diversity.
# This may be replaced when dependencies are built.
