# Empty compiler generated dependencies file for bench_table2_spectrum_variance.
# This may be replaced when dependencies are built.
