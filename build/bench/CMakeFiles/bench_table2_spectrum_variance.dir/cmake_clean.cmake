file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_spectrum_variance.dir/bench_table2_spectrum_variance.cc.o"
  "CMakeFiles/bench_table2_spectrum_variance.dir/bench_table2_spectrum_variance.cc.o.d"
  "bench_table2_spectrum_variance"
  "bench_table2_spectrum_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_spectrum_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
