# Empty dependencies file for bench_table9_ablation.
# This may be replaced when dependencies are built.
