file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dualistic_conv.dir/bench_fig3_dualistic_conv.cc.o"
  "CMakeFiles/bench_fig3_dualistic_conv.dir/bench_fig3_dualistic_conv.cc.o.d"
  "bench_fig3_dualistic_conv"
  "bench_fig3_dualistic_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dualistic_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
