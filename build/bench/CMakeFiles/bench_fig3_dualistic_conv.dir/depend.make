# Empty dependencies file for bench_fig3_dualistic_conv.
# This may be replaced when dependencies are built.
