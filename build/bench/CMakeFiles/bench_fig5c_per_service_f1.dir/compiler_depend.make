# Empty compiler generated dependencies file for bench_fig5c_per_service_f1.
# This may be replaced when dependencies are built.
