file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_gap_bound.dir/bench_theorem1_gap_bound.cc.o"
  "CMakeFiles/bench_theorem1_gap_bound.dir/bench_theorem1_gap_bound.cc.o.d"
  "bench_theorem1_gap_bound"
  "bench_theorem1_gap_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_gap_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
