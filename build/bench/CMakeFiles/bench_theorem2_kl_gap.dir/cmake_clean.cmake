file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2_kl_gap.dir/bench_theorem2_kl_gap.cc.o"
  "CMakeFiles/bench_theorem2_kl_gap.dir/bench_theorem2_kl_gap.cc.o.d"
  "bench_theorem2_kl_gap"
  "bench_theorem2_kl_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_kl_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
