# Empty dependencies file for bench_theorem2_kl_gap.
# This may be replaced when dependencies are built.
