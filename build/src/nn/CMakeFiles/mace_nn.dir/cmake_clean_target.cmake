file(REMOVE_RECURSE
  "libmace_nn.a"
)
