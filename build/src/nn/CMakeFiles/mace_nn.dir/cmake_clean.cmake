file(REMOVE_RECURSE
  "CMakeFiles/mace_nn.dir/layers.cc.o"
  "CMakeFiles/mace_nn.dir/layers.cc.o.d"
  "CMakeFiles/mace_nn.dir/optimizer.cc.o"
  "CMakeFiles/mace_nn.dir/optimizer.cc.o.d"
  "libmace_nn.a"
  "libmace_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
