# Empty dependencies file for mace_nn.
# This may be replaced when dependencies are built.
