# Empty compiler generated dependencies file for mace_baselines.
# This may be replaced when dependencies are built.
