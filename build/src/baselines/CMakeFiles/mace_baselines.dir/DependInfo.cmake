
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attention_autoencoder.cc" "src/baselines/CMakeFiles/mace_baselines.dir/attention_autoencoder.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/attention_autoencoder.cc.o.d"
  "/root/repo/src/baselines/conv_autoencoder.cc" "src/baselines/CMakeFiles/mace_baselines.dir/conv_autoencoder.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/conv_autoencoder.cc.o.d"
  "/root/repo/src/baselines/dense_autoencoder.cc" "src/baselines/CMakeFiles/mace_baselines.dir/dense_autoencoder.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/dense_autoencoder.cc.o.d"
  "/root/repo/src/baselines/lstm_autoencoder.cc" "src/baselines/CMakeFiles/mace_baselines.dir/lstm_autoencoder.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/lstm_autoencoder.cc.o.d"
  "/root/repo/src/baselines/reconstruction_detector.cc" "src/baselines/CMakeFiles/mace_baselines.dir/reconstruction_detector.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/reconstruction_detector.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/mace_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/signal_reconstructor.cc" "src/baselines/CMakeFiles/mace_baselines.dir/signal_reconstructor.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/signal_reconstructor.cc.o.d"
  "/root/repo/src/baselines/vae.cc" "src/baselines/CMakeFiles/mace_baselines.dir/vae.cc.o" "gcc" "src/baselines/CMakeFiles/mace_baselines.dir/vae.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mace_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mace_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mace_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mace_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/mace_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
