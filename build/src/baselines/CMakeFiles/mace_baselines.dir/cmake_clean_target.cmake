file(REMOVE_RECURSE
  "libmace_baselines.a"
)
