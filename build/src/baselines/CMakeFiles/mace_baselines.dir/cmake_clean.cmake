file(REMOVE_RECURSE
  "CMakeFiles/mace_baselines.dir/attention_autoencoder.cc.o"
  "CMakeFiles/mace_baselines.dir/attention_autoencoder.cc.o.d"
  "CMakeFiles/mace_baselines.dir/conv_autoencoder.cc.o"
  "CMakeFiles/mace_baselines.dir/conv_autoencoder.cc.o.d"
  "CMakeFiles/mace_baselines.dir/dense_autoencoder.cc.o"
  "CMakeFiles/mace_baselines.dir/dense_autoencoder.cc.o.d"
  "CMakeFiles/mace_baselines.dir/lstm_autoencoder.cc.o"
  "CMakeFiles/mace_baselines.dir/lstm_autoencoder.cc.o.d"
  "CMakeFiles/mace_baselines.dir/reconstruction_detector.cc.o"
  "CMakeFiles/mace_baselines.dir/reconstruction_detector.cc.o.d"
  "CMakeFiles/mace_baselines.dir/registry.cc.o"
  "CMakeFiles/mace_baselines.dir/registry.cc.o.d"
  "CMakeFiles/mace_baselines.dir/signal_reconstructor.cc.o"
  "CMakeFiles/mace_baselines.dir/signal_reconstructor.cc.o.d"
  "CMakeFiles/mace_baselines.dir/vae.cc.o"
  "CMakeFiles/mace_baselines.dir/vae.cc.o.d"
  "libmace_baselines.a"
  "libmace_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
