# Empty compiler generated dependencies file for mace_common.
# This may be replaced when dependencies are built.
