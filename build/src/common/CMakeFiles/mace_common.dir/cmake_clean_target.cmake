file(REMOVE_RECURSE
  "libmace_common.a"
)
