file(REMOVE_RECURSE
  "CMakeFiles/mace_common.dir/csv.cc.o"
  "CMakeFiles/mace_common.dir/csv.cc.o.d"
  "CMakeFiles/mace_common.dir/logging.cc.o"
  "CMakeFiles/mace_common.dir/logging.cc.o.d"
  "CMakeFiles/mace_common.dir/math_utils.cc.o"
  "CMakeFiles/mace_common.dir/math_utils.cc.o.d"
  "CMakeFiles/mace_common.dir/rng.cc.o"
  "CMakeFiles/mace_common.dir/rng.cc.o.d"
  "CMakeFiles/mace_common.dir/status.cc.o"
  "CMakeFiles/mace_common.dir/status.cc.o.d"
  "libmace_common.a"
  "libmace_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
