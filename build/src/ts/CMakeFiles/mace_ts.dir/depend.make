# Empty dependencies file for mace_ts.
# This may be replaced when dependencies are built.
