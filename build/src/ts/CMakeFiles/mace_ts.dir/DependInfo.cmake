
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/generator.cc" "src/ts/CMakeFiles/mace_ts.dir/generator.cc.o" "gcc" "src/ts/CMakeFiles/mace_ts.dir/generator.cc.o.d"
  "/root/repo/src/ts/io.cc" "src/ts/CMakeFiles/mace_ts.dir/io.cc.o" "gcc" "src/ts/CMakeFiles/mace_ts.dir/io.cc.o.d"
  "/root/repo/src/ts/profiles.cc" "src/ts/CMakeFiles/mace_ts.dir/profiles.cc.o" "gcc" "src/ts/CMakeFiles/mace_ts.dir/profiles.cc.o.d"
  "/root/repo/src/ts/scaler.cc" "src/ts/CMakeFiles/mace_ts.dir/scaler.cc.o" "gcc" "src/ts/CMakeFiles/mace_ts.dir/scaler.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/ts/CMakeFiles/mace_ts.dir/time_series.cc.o" "gcc" "src/ts/CMakeFiles/mace_ts.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mace_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mace_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
