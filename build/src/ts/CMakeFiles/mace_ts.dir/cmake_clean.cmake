file(REMOVE_RECURSE
  "CMakeFiles/mace_ts.dir/generator.cc.o"
  "CMakeFiles/mace_ts.dir/generator.cc.o.d"
  "CMakeFiles/mace_ts.dir/io.cc.o"
  "CMakeFiles/mace_ts.dir/io.cc.o.d"
  "CMakeFiles/mace_ts.dir/profiles.cc.o"
  "CMakeFiles/mace_ts.dir/profiles.cc.o.d"
  "CMakeFiles/mace_ts.dir/scaler.cc.o"
  "CMakeFiles/mace_ts.dir/scaler.cc.o.d"
  "CMakeFiles/mace_ts.dir/time_series.cc.o"
  "CMakeFiles/mace_ts.dir/time_series.cc.o.d"
  "libmace_ts.a"
  "libmace_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
