file(REMOVE_RECURSE
  "libmace_ts.a"
)
