file(REMOVE_RECURSE
  "libmace_fft.a"
)
