# Empty compiler generated dependencies file for mace_fft.
# This may be replaced when dependencies are built.
