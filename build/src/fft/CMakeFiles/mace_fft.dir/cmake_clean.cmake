file(REMOVE_RECURSE
  "CMakeFiles/mace_fft.dir/context_aware_dft.cc.o"
  "CMakeFiles/mace_fft.dir/context_aware_dft.cc.o.d"
  "CMakeFiles/mace_fft.dir/fft.cc.o"
  "CMakeFiles/mace_fft.dir/fft.cc.o.d"
  "CMakeFiles/mace_fft.dir/spectrum.cc.o"
  "CMakeFiles/mace_fft.dir/spectrum.cc.o.d"
  "libmace_fft.a"
  "libmace_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
