# Empty compiler generated dependencies file for mace_tensor.
# This may be replaced when dependencies are built.
