file(REMOVE_RECURSE
  "libmace_tensor.a"
)
