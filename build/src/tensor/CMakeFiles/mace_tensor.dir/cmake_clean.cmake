file(REMOVE_RECURSE
  "CMakeFiles/mace_tensor.dir/ops.cc.o"
  "CMakeFiles/mace_tensor.dir/ops.cc.o.d"
  "CMakeFiles/mace_tensor.dir/shape.cc.o"
  "CMakeFiles/mace_tensor.dir/shape.cc.o.d"
  "CMakeFiles/mace_tensor.dir/tensor.cc.o"
  "CMakeFiles/mace_tensor.dir/tensor.cc.o.d"
  "libmace_tensor.a"
  "libmace_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
