# Empty dependencies file for mace_core.
# This may be replaced when dependencies are built.
