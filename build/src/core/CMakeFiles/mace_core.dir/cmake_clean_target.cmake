file(REMOVE_RECURSE
  "libmace_core.a"
)
