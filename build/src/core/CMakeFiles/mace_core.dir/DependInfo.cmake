
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/mace_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/detector.cc.o.d"
  "/root/repo/src/core/dualistic_conv.cc" "src/core/CMakeFiles/mace_core.dir/dualistic_conv.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/dualistic_conv.cc.o.d"
  "/root/repo/src/core/mace_detector.cc" "src/core/CMakeFiles/mace_core.dir/mace_detector.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/mace_detector.cc.o.d"
  "/root/repo/src/core/mace_model.cc" "src/core/CMakeFiles/mace_core.dir/mace_model.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/mace_model.cc.o.d"
  "/root/repo/src/core/mace_serialization.cc" "src/core/CMakeFiles/mace_core.dir/mace_serialization.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/mace_serialization.cc.o.d"
  "/root/repo/src/core/pattern_extractor.cc" "src/core/CMakeFiles/mace_core.dir/pattern_extractor.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/pattern_extractor.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/mace_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/mace_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mace_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mace_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/mace_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mace_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mace_ts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
