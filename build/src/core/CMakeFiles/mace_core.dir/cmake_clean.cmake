file(REMOVE_RECURSE
  "CMakeFiles/mace_core.dir/detector.cc.o"
  "CMakeFiles/mace_core.dir/detector.cc.o.d"
  "CMakeFiles/mace_core.dir/dualistic_conv.cc.o"
  "CMakeFiles/mace_core.dir/dualistic_conv.cc.o.d"
  "CMakeFiles/mace_core.dir/mace_detector.cc.o"
  "CMakeFiles/mace_core.dir/mace_detector.cc.o.d"
  "CMakeFiles/mace_core.dir/mace_model.cc.o"
  "CMakeFiles/mace_core.dir/mace_model.cc.o.d"
  "CMakeFiles/mace_core.dir/mace_serialization.cc.o"
  "CMakeFiles/mace_core.dir/mace_serialization.cc.o.d"
  "CMakeFiles/mace_core.dir/pattern_extractor.cc.o"
  "CMakeFiles/mace_core.dir/pattern_extractor.cc.o.d"
  "CMakeFiles/mace_core.dir/streaming.cc.o"
  "CMakeFiles/mace_core.dir/streaming.cc.o.d"
  "libmace_core.a"
  "libmace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
