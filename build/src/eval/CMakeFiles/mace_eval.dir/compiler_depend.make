# Empty compiler generated dependencies file for mace_eval.
# This may be replaced when dependencies are built.
