file(REMOVE_RECURSE
  "CMakeFiles/mace_eval.dir/metrics.cc.o"
  "CMakeFiles/mace_eval.dir/metrics.cc.o.d"
  "CMakeFiles/mace_eval.dir/pca.cc.o"
  "CMakeFiles/mace_eval.dir/pca.cc.o.d"
  "CMakeFiles/mace_eval.dir/profiler.cc.o"
  "CMakeFiles/mace_eval.dir/profiler.cc.o.d"
  "CMakeFiles/mace_eval.dir/roc.cc.o"
  "CMakeFiles/mace_eval.dir/roc.cc.o.d"
  "libmace_eval.a"
  "libmace_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
