file(REMOVE_RECURSE
  "libmace_eval.a"
)
