file(REMOVE_RECURSE
  "CMakeFiles/mace_model_test.dir/mace_model_test.cc.o"
  "CMakeFiles/mace_model_test.dir/mace_model_test.cc.o.d"
  "mace_model_test"
  "mace_model_test.pdb"
  "mace_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
