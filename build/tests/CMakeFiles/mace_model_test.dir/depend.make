# Empty dependencies file for mace_model_test.
# This may be replaced when dependencies are built.
