# Empty dependencies file for dualistic_conv_test.
# This may be replaced when dependencies are built.
