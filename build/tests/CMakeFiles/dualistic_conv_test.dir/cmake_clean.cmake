file(REMOVE_RECURSE
  "CMakeFiles/dualistic_conv_test.dir/dualistic_conv_test.cc.o"
  "CMakeFiles/dualistic_conv_test.dir/dualistic_conv_test.cc.o.d"
  "dualistic_conv_test"
  "dualistic_conv_test.pdb"
  "dualistic_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualistic_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
