file(REMOVE_RECURSE
  "CMakeFiles/roc_test.dir/roc_test.cc.o"
  "CMakeFiles/roc_test.dir/roc_test.cc.o.d"
  "roc_test"
  "roc_test.pdb"
  "roc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
