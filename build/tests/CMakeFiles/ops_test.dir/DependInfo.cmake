
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/ops_test.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mace_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mace_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mace_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mace_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/mace_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mace_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
