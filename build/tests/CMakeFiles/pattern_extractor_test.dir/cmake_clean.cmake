file(REMOVE_RECURSE
  "CMakeFiles/pattern_extractor_test.dir/pattern_extractor_test.cc.o"
  "CMakeFiles/pattern_extractor_test.dir/pattern_extractor_test.cc.o.d"
  "pattern_extractor_test"
  "pattern_extractor_test.pdb"
  "pattern_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
