# Empty dependencies file for pattern_extractor_test.
# This may be replaced when dependencies are built.
