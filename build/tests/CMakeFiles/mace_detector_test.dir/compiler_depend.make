# Empty compiler generated dependencies file for mace_detector_test.
# This may be replaced when dependencies are built.
