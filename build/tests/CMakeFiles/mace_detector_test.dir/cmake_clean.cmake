file(REMOVE_RECURSE
  "CMakeFiles/mace_detector_test.dir/mace_detector_test.cc.o"
  "CMakeFiles/mace_detector_test.dir/mace_detector_test.cc.o.d"
  "mace_detector_test"
  "mace_detector_test.pdb"
  "mace_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
