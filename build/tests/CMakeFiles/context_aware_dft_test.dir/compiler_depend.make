# Empty compiler generated dependencies file for context_aware_dft_test.
# This may be replaced when dependencies are built.
