file(REMOVE_RECURSE
  "CMakeFiles/context_aware_dft_test.dir/context_aware_dft_test.cc.o"
  "CMakeFiles/context_aware_dft_test.dir/context_aware_dft_test.cc.o.d"
  "context_aware_dft_test"
  "context_aware_dft_test.pdb"
  "context_aware_dft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_aware_dft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
