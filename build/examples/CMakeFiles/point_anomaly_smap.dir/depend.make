# Empty dependencies file for point_anomaly_smap.
# This may be replaced when dependencies are built.
