file(REMOVE_RECURSE
  "CMakeFiles/point_anomaly_smap.dir/point_anomaly_smap.cpp.o"
  "CMakeFiles/point_anomaly_smap.dir/point_anomaly_smap.cpp.o.d"
  "point_anomaly_smap"
  "point_anomaly_smap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_anomaly_smap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
