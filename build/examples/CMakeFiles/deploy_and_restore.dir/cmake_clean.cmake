file(REMOVE_RECURSE
  "CMakeFiles/deploy_and_restore.dir/deploy_and_restore.cpp.o"
  "CMakeFiles/deploy_and_restore.dir/deploy_and_restore.cpp.o.d"
  "deploy_and_restore"
  "deploy_and_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_and_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
