file(REMOVE_RECURSE
  "CMakeFiles/mace_cli.dir/mace_cli.cpp.o"
  "CMakeFiles/mace_cli.dir/mace_cli.cpp.o.d"
  "mace_cli"
  "mace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
