# Empty compiler generated dependencies file for mace_cli.
# This may be replaced when dependencies are built.
