file(REMOVE_RECURSE
  "CMakeFiles/multi_service_cloud.dir/multi_service_cloud.cpp.o"
  "CMakeFiles/multi_service_cloud.dir/multi_service_cloud.cpp.o.d"
  "multi_service_cloud"
  "multi_service_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_service_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
