# Empty compiler generated dependencies file for multi_service_cloud.
# This may be replaced when dependencies are built.
