# Empty compiler generated dependencies file for transfer_unseen_services.
# This may be replaced when dependencies are built.
