file(REMOVE_RECURSE
  "CMakeFiles/transfer_unseen_services.dir/transfer_unseen_services.cpp.o"
  "CMakeFiles/transfer_unseen_services.dir/transfer_unseen_services.cpp.o.d"
  "transfer_unseen_services"
  "transfer_unseen_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_unseen_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
