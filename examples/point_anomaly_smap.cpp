// Short-term (point) anomaly detection, the paper's C3/S3: on SMAP-like
// telemetry with many 1-2 step spikes, the time-domain dualistic
// convolution extends spikes so they are not overlooked. The example
// contrasts a single spike's footprint before and after amplification and
// evaluates MACE with and without stage 1.
//
// Run: ./build/examples/point_anomaly_smap

#include <cstdio>

#include "core/dualistic_conv.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;

  // --- the mechanism on a single spike ------------------------------------
  std::vector<double> series(17, 0.0);
  series[8] = 2.5;  // a one-step spike
  const auto amplified = core::DualisticAmplify(series, 5, 11.0, 5.0);
  std::printf("one-step spike, before vs after stage-1 amplification:\n");
  std::printf("  t        : ");
  for (size_t t = 4; t < 13; ++t) std::printf("%6zu", t);
  std::printf("\n  input    : ");
  for (size_t t = 4; t < 13; ++t) std::printf("%6.2f", series[t]);
  std::printf("\n  amplified: ");
  for (size_t t = 4; t < 13; ++t) std::printf("%6.2f", amplified[t]);
  std::printf("\n\n");

  // --- end to end on SMAP-like data ----------------------------------------
  ts::DatasetProfile profile = ts::SmapProfile();
  profile.num_services = 6;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  auto evaluate = [&](bool with_stage1) {
    core::MaceConfig config;
    config.epochs = 5;
    config.use_dualistic_time = with_stage1;
    core::MaceDetector detector(config);
    MACE_CHECK_OK(detector.Fit(dataset.services));
    std::vector<eval::PrMetrics> metrics;
    for (size_t s = 0; s < dataset.services.size(); ++s) {
      auto scores =
          detector.Score(static_cast<int>(s), dataset.services[s].test);
      MACE_CHECK_OK(scores.status());
      auto best = eval::BestF1Threshold(*scores,
                                        dataset.services[s].test.labels());
      metrics.push_back(best->metrics);
    }
    return eval::MacroAverage(metrics);
  };

  const eval::PrMetrics with = evaluate(true);
  const eval::PrMetrics without = evaluate(false);
  std::printf("SMAP-like telemetry (%d services, %.0f%% anomalies, mostly "
              "point spikes):\n",
              profile.num_services, 100.0 * profile.anomaly_ratio);
  std::printf("  MACE with stage-1 amplification : P=%.3f R=%.3f F1=%.3f\n",
              with.precision, with.recall, with.f1);
  std::printf("  MACE without stage 1            : P=%.3f R=%.3f F1=%.3f\n",
              without.precision, without.recall, without.f1);
  std::printf(
      "\nnote: stage 1 exists to stop encoder-decoder backbones from\n"
      "overlooking single points; MACE's projection residual already\n"
      "preserves them, so on this substrate the amplification mainly\n"
      "trades background noise for footprint (see EXPERIMENTS.md)\n");
  return 0;
}
