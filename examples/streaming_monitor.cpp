// Real-time monitoring (the paper's C2): feed observations one step at a
// time through the serving frontend's synchronous path and raise alerts
// against a threshold calibrated on the first emitted scores — no batch
// windowing, no retraining, fixed per-step latency of one window.
//
// A single-shard ServeFrontend wraps the StreamingScorer here, so the
// live snapshot is the same ServeStats line the mace_served dashboard
// prints — one stats path for both the one-stream monitor and the
// multi-tenant pool.
//
// Run: ./build/examples/streaming_monitor

#include <cstdio>
#include <memory>

#include "common/math_utils.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "ts/profiles.h"

namespace {

/// Live view for the streamed service: the pool-wide ServeStats line plus
/// per-stage mean latency from the obs registry.
void PrintSnapshot(size_t step, const mace::serve::ServeStats& stats) {
  using mace::obs::Metrics;
  auto stage_mean_us = [](const char* stage) {
    return Metrics()
               .GetHistogram("mace_stage_latency_seconds", "",
                             {{"stage", stage}})
               ->Mean() *
           1e6;
  };
  std::printf(
      "  step %-5zu %s\n"
      "             stage us: amp %.0f dft %.0f char %.0f ae %.0f\n",
      step, stats.FormatLine().c_str(), stage_mean_us("dualistic_time"),
      stage_mean_us("context_dft"), stage_mean_us("freq_characterization"),
      stage_mean_us("autoencoder"));
}

constexpr size_t kSnapshotEvery = 400;

}  // namespace

int main() {
  using namespace mace;

  ts::DatasetProfile profile = ts::McProfile();  // point-anomaly heavy
  profile.num_services = 4;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig config;
  config.epochs = 5;
  auto detector = std::make_shared<core::MaceDetector>(config);
  MACE_CHECK_OK(detector->Fit(dataset.services));

  // One tenant, one shard: the frontend's synchronous path is then an
  // in-order StreamingScorer with serving stats attached.
  serve::ServeConfig serve_config;
  serve_config.num_shards = 1;
  auto frontend = serve::ServeFrontend::Create(detector, serve_config);
  MACE_CHECK_OK(frontend.status());
  const ts::TimeSeries& test = dataset.services[0].test;

  // Stream the test split one observation at a time. Following the SPOT
  // protocol, the threshold is calibrated online from the first
  // `kCalibration` emitted scores, then alerts fire on everything after.
  constexpr size_t kCalibration = 240;
  std::vector<double> scores;
  double threshold = 0.0;
  bool calibrated = false;
  std::vector<uint8_t> alerts;
  size_t alert_count = 0;
  auto consume = [&](double score, size_t input_step) {
    scores.push_back(score);
    if (!calibrated && scores.size() >= kCalibration) {
      // Contamination-robust rule: anomalies inside the calibration slice
      // inflate extreme-tail estimates, so anchor on a bulk quantile with
      // a safety factor instead of the raw POT tail (POT remains the
      // right tool on clean calibration data; see multi_service_cloud).
      auto q90 = Quantile(scores, 0.90);
      MACE_CHECK_OK(q90.status());
      threshold = 2.0 * *q90;
      calibrated = true;
      std::printf("calibrated threshold after %zu scores: %.4f "
                  "(2 x P90)\n",
                  scores.size(), threshold);
    }
    const bool alert = calibrated && score > threshold;
    alerts.push_back(alert ? 1 : 0);
    if (alert && alert_count < 8) {
      std::printf("  ALERT at step %zu (score %.3f, emitted at input "
                  "step %zu — latency %zu)\n",
                  alerts.size() - 1, score, input_step,
                  input_step - (alerts.size() - 1));
    }
    alert_count += alert;
  };
  for (size_t t = 0; t < test.length(); ++t) {
    auto batch = (*frontend)->Score("monitor", 0, test.values()[t]);
    MACE_CHECK_OK(batch.status());
    MACE_CHECK_OK(batch->status);
    for (double score : batch->scores) consume(score, t);
    if ((t + 1) % kSnapshotEvery == 0) {
      PrintSnapshot(t + 1, (*frontend)->Stats());
    }
  }
  // Close drains the windowed tail the stream still owes.
  auto tail = (*frontend)->Close("monitor", 0);
  MACE_CHECK_OK(tail.status());
  for (double score : *tail) {
    consume(score, test.length() - 1);
  }

  std::printf("\nstream done: %zu steps, %zu alert steps\n", alerts.size(),
              alert_count);
  // Evaluate only past the calibration warm-up.
  std::vector<uint8_t> eval_alerts(alerts.begin() + kCalibration,
                                   alerts.end());
  std::vector<uint8_t> eval_labels(
      test.labels().begin() + kCalibration,
      test.labels().begin() + alerts.size());
  const eval::PrMetrics m = eval::FromConfusion(eval::Confuse(
      eval::PointAdjust(eval_alerts, eval_labels), eval_labels));
  std::printf("online detection past warm-up: P=%.3f R=%.3f F1=%.3f\n",
              m.precision, m.recall, m.f1);
  return 0;
}
