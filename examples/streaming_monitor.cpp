// Real-time monitoring (the paper's C2): feed observations one step at a
// time through a StreamingScorer and raise alerts against a POT threshold
// calibrated on the training split — no batch windowing, no retraining,
// fixed per-step latency of one window.
//
// Run: ./build/examples/streaming_monitor

#include <cstdio>

#include "common/math_utils.h"
#include "core/streaming.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "ts/profiles.h"

namespace {

/// Compact live view of the obs registry for one streamed service: a line
/// every kSnapshotEvery steps with throughput and per-stage mean latency.
void PrintMetricsSnapshot(size_t step) {
  using mace::obs::Metrics;
  auto stage_mean_us = [](const char* stage) {
    return Metrics()
               .GetHistogram("mace_stage_latency_seconds", "",
                             {{"stage", stage}})
               ->Mean() *
           1e6;
  };
  const double scores_per_sec =
      Metrics()
          .GetGauge("mace_stream_scores_per_second", "",
                    {{"service", "0"}})
          ->Value();
  const uint64_t windows =
      Metrics().GetCounter("mace_windows_scored_total", "",
                           {{"service", "0"}})
          ->Value();
  std::printf(
      "  [obs] step %-5zu windows %-4llu  %.0f scores/s  stage us: "
      "amp %.0f dft %.0f char %.0f ae %.0f\n",
      step, static_cast<unsigned long long>(windows), scores_per_sec,
      stage_mean_us("dualistic_time"), stage_mean_us("context_dft"),
      stage_mean_us("freq_characterization"), stage_mean_us("autoencoder"));
}

constexpr size_t kSnapshotEvery = 400;

}  // namespace

int main() {
  using namespace mace;

  ts::DatasetProfile profile = ts::McProfile();  // point-anomaly heavy
  profile.num_services = 4;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  core::MaceConfig config;
  config.epochs = 5;
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(dataset.services));

  // Stream the test split one observation at a time. Following the SPOT
  // protocol, the threshold is calibrated online from the first
  // `kCalibration` emitted scores, then alerts fire on everything after.
  constexpr size_t kCalibration = 240;
  auto scorer = core::StreamingScorer::Create(&detector, 0);
  MACE_CHECK_OK(scorer.status());
  const ts::TimeSeries& test = dataset.services[0].test;

  std::vector<double> scores;
  double threshold = 0.0;
  bool calibrated = false;
  std::vector<uint8_t> alerts;
  size_t alert_count = 0;
  auto consume = [&](double score, size_t input_step) {
    scores.push_back(score);
    if (!calibrated && scores.size() >= kCalibration) {
      // Contamination-robust rule: anomalies inside the calibration slice
      // inflate extreme-tail estimates, so anchor on a bulk quantile with
      // a safety factor instead of the raw POT tail (POT remains the
      // right tool on clean calibration data; see multi_service_cloud).
      auto q90 = Quantile(scores, 0.90);
      MACE_CHECK_OK(q90.status());
      threshold = 2.0 * *q90;
      calibrated = true;
      std::printf("calibrated threshold after %zu scores: %.4f "
                  "(2 x P90)\n",
                  scores.size(), threshold);
    }
    const bool alert = calibrated && score > threshold;
    alerts.push_back(alert ? 1 : 0);
    if (alert && alert_count < 8) {
      std::printf("  ALERT at step %zu (score %.3f, emitted at input "
                  "step %zu — latency %zu)\n",
                  alerts.size() - 1, score, input_step,
                  input_step - (alerts.size() - 1));
    }
    alert_count += alert;
  };
  for (size_t t = 0; t < test.length(); ++t) {
    auto finalized = scorer->Push(test.values()[t]);
    MACE_CHECK_OK(finalized.status());
    for (double score : *finalized) consume(score, t);
    if ((t + 1) % kSnapshotEvery == 0) PrintMetricsSnapshot(t + 1);
  }
  for (double score : scorer->Finish()) {
    consume(score, test.length() - 1);
  }

  std::printf("\nstream done: %zu steps, %zu alert steps\n", alerts.size(),
              alert_count);
  // Evaluate only past the calibration warm-up.
  std::vector<uint8_t> eval_alerts(alerts.begin() + kCalibration,
                                   alerts.end());
  std::vector<uint8_t> eval_labels(
      test.labels().begin() + kCalibration,
      test.labels().begin() + alerts.size());
  const eval::PrMetrics m = eval::FromConfusion(eval::Confuse(
      eval::PointAdjust(eval_alerts, eval_labels), eval_labels));
  std::printf("online detection past warm-up: P=%.3f R=%.3f F1=%.3f\n",
              m.precision, m.recall, m.f1);
  return 0;
}
