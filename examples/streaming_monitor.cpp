// Real-time monitoring (the paper's C2): feed observations one step at a
// time through the serving frontend's synchronous path and raise alerts
// against a threshold calibrated on the first emitted scores — no batch
// windowing, no retraining, fixed per-step latency of one window.
//
// A single-shard ServeFrontend wraps the StreamingScorers here, so the
// live snapshot is the same ServeStats line the mace_served dashboard
// prints — one stats path for both the monitor and the multi-tenant pool.
// Every service streams as its own tenant into a shared anomaly
// HistoryStore, and the periodic snapshot includes a fleet ranking panel
// (history/query.h TopTenants over the most recent steps).
//
// Observations travel over the real MWIREv1 wire by default: the
// monitor starts the epoll front door on a loopback socket and scores
// through a WireClient, so every step exercises the exact byte path a
// remote agent would use. The dashboard panels keep reading the
// process-local frontend/history state the server scores into.
// --in-process restores the direct synchronous path.
//
// Run: ./build/examples/streaming_monitor
//        [--anomaly-threshold T]  fixed history threshold; 0 (default)
//                                 calibrates 2 x P90 per tenant online
//        [--history-capacity N]   per-tenant history ring, records
//        [--top-k K]              rows in the ranking panel
//        [--online-refit]         attach the online-learning subsystem:
//                                 rolling buffers, background refits, and
//                                 a K=3 consensus ensemble whose vote
//                                 becomes the history anomaly bit
//        [--consensus NAME]       all (default) | max | quantile
//        [--in-process]           score directly instead of through the
//                                 loopback wire protocol

#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/math_utils.h"
#include "eval/metrics.h"
#include "history/query.h"
#include "history/store.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "online/trainer.h"
#include "serve/frontend.h"
#include "ts/profiles.h"

namespace {

struct Options {
  double anomaly_threshold = 0.0;  // 0 = calibrate per tenant
  int history_capacity = 1024;
  int top_k = 4;
  bool online_refit = false;
  bool in_process = false;
  mace::online::ConsensusKind consensus =
      mace::online::ConsensusKind::kAllVote;
};

/// Strict numeric parsers (the mace_served convention): the whole value
/// must parse or the process exits 2 naming the flag.
int ParseIntOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const int value = std::stoi(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs an integer, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

double ParseDoubleOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs a number, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--anomaly-threshold") {
      options.anomaly_threshold = ParseDoubleOrDie(arg, next());
    } else if (arg == "--history-capacity") {
      options.history_capacity = ParseIntOrDie(arg, next());
    } else if (arg == "--top-k") {
      options.top_k = ParseIntOrDie(arg, next());
    } else if (arg == "--online-refit") {
      options.online_refit = true;
    } else if (arg == "--in-process") {
      options.in_process = true;
    } else if (arg == "--consensus") {
      const std::string name = next();
      if (name == "all") {
        options.consensus = mace::online::ConsensusKind::kAllVote;
      } else if (name == "max") {
        options.consensus = mace::online::ConsensusKind::kMax;
      } else if (name == "quantile") {
        options.consensus = mace::online::ConsensusKind::kQuantile;
      } else {
        std::fprintf(stderr,
                     "--consensus needs all|max|quantile, got '%s'\n",
                     name.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (!(options.anomaly_threshold >= 0.0)) {
    std::fprintf(stderr, "--anomaly-threshold must be >= 0\n");
    std::exit(2);
  }
  if (options.history_capacity < 1 || options.top_k < 1) {
    std::fprintf(stderr,
                 "--history-capacity/--top-k must be positive\n");
    std::exit(2);
  }
  return options;
}

/// Live view: the pool-wide ServeStats line, per-stage mean latency from
/// the obs registry, and the fleet ranking panel over the freshest
/// `window` emitted steps of the history store.
void PrintSnapshot(size_t step, const mace::serve::ServeStats& stats,
                   const mace::history::HistoryStore& history,
                   int64_t newest_step, int64_t window, size_t top_k) {
  using mace::obs::Metrics;
  auto stage_mean_us = [](const char* stage) {
    return Metrics()
               .GetHistogram("mace_stage_latency_seconds", "",
                             {{"stage", stage}})
               ->Mean() *
           1e6;
  };
  std::printf(
      "  step %-5zu %s\n"
      "             stage us: amp %.0f dft %.0f char %.0f ae %.0f\n",
      step, stats.FormatLine().c_str(), stage_mean_us("dualistic_time"),
      stage_mean_us("context_dft"), stage_mean_us("freq_characterization"),
      stage_mean_us("autoencoder"));
  const auto ranks = mace::history::TopTenants(
      history, std::max<int64_t>(0, newest_step - window + 1), newest_step,
      top_k);
  std::printf("             fleet (last %lld steps):",
              static_cast<long long>(window));
  if (ranks.empty()) std::printf(" no scores yet");
  for (const mace::history::TenantRank& r : ranks) {
    std::printf("  %s sev %.3f (rate %.2f)", r.tenant.c_str(), r.severity,
                r.anomaly_rate);
  }
  std::printf("\n");
}

constexpr size_t kSnapshotEvery = 400;

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;

  const Options options = ParseArgs(argc, argv);

  ts::DatasetProfile profile = ts::McProfile();  // point-anomaly heavy
  profile.num_services = 4;
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  const size_t num_tenants = dataset.services.size();

  core::MaceConfig config;
  config.epochs = 5;
  auto detector = std::make_shared<core::MaceDetector>(config);
  MACE_CHECK_OK(detector->Fit(dataset.services));

  // Every emitted score lands in the shared history store; with the
  // sessions pinned to one shard the synchronous path stays an in-order
  // StreamingScorer per tenant with serving stats attached.
  history::HistoryStore history(history::HistoryConfig{
      static_cast<size_t>(options.history_capacity),
      options.anomaly_threshold});
  // --online-refit: every session additionally feeds a rolling buffer
  // and fans its emitted steps across a K=3 generation ensemble; the
  // anomaly bit stored in the history (and hence the fleet panel's
  // anomaly rates) becomes the consensus vote. The trainer outlives the
  // frontend — sessions borrow its ensembles.
  std::optional<online::OnlineTrainer> trainer;
  if (options.online_refit) {
    online::OnlineConfig online_config;
    online_config.model = config;
    online_config.buffer_capacity = 512;
    online_config.min_refit_rows = 256;
    online_config.refit_interval = 256;
    online_config.ensemble_size = 3;
    online_config.consensus = options.consensus;
    trainer.emplace(online_config);
  }
  serve::ServeConfig serve_config;
  serve_config.num_shards = 1;
  serve_config.history = &history;
  if (trainer.has_value()) serve_config.online = &*trainer;
  auto frontend = serve::ServeFrontend::Create(detector, serve_config);
  MACE_CHECK_OK(frontend.status());

  // Wire transport (default): the same frontend behind a loopback
  // MWIREv1 socket. History/trainer state stays in this process, so the
  // panels below read it directly while scoring goes over TCP.
  std::unique_ptr<net::ScoreServer> server;
  std::unique_ptr<net::WireClient> client;
  if (!options.in_process) {
    auto started = net::ScoreServer::Start(frontend.value().get(), {});
    MACE_CHECK_OK(started.status());
    server = std::move(started).value();
    auto connected = net::WireClient::Connect("127.0.0.1", server->port());
    MACE_CHECK_OK(connected.status());
    client = std::move(connected).value();
    MACE_CHECK_OK(client->Ping());
    std::printf("wire transport: loopback port %u\n",
                unsigned{server->port()});
  }

  // One scoring call, either transport; returns the emitted scores.
  auto score_step = [&](const std::string& tenant, int service,
                        const std::vector<double>& values) {
    if (options.in_process) {
      auto batch = (*frontend)->Score(tenant, service, values);
      MACE_CHECK_OK(batch.status());
      MACE_CHECK_OK(batch->status);
      return std::move(batch->scores);
    }
    wire::ScoreRequest request;
    request.tenant = tenant;
    request.service = service;
    request.values = values;
    auto response = client->Score(request);
    MACE_CHECK_OK(response.status());
    MACE_CHECK_OK(response->ToStatus());
    return std::move(response->scores);
  };

  // Stream every service's test split as its own tenant. Following the
  // SPOT protocol, each tenant's alert threshold is calibrated online
  // from its first `kCalibration` emitted scores, then alerts fire on
  // everything after. The same threshold is installed into the history
  // store, so later anomaly bits agree with the monitor's alerts.
  constexpr size_t kCalibration = 240;
  struct TenantState {
    std::string name;
    history::HistoryStore::TenantId history_id = 0;
    std::vector<double> scores;
    double threshold = 0.0;
    bool calibrated = false;
    std::vector<uint8_t> alerts;
    size_t alert_count = 0;
  };
  std::vector<TenantState> tenants(num_tenants);
  const bool fixed_threshold = options.anomaly_threshold > 0.0;
  for (size_t s = 0; s < num_tenants; ++s) {
    tenants[s].name = "svc" + std::to_string(s);
    // The serve path interns "<tenant>/<service>" on first score; intern
    // the same key here to install calibrated thresholds later.
    tenants[s].history_id =
        history.Intern(tenants[s].name + "/" + std::to_string(s));
    tenants[s].threshold = options.anomaly_threshold;
    tenants[s].calibrated = fixed_threshold;
  }

  auto consume = [&](TenantState& tenant, double score, size_t input_step) {
    tenant.scores.push_back(score);
    if (!tenant.calibrated && tenant.scores.size() >= kCalibration) {
      // Contamination-robust rule: anomalies inside the calibration slice
      // inflate extreme-tail estimates, so anchor on a bulk quantile with
      // a safety factor instead of the raw POT tail (POT remains the
      // right tool on clean calibration data; see multi_service_cloud).
      // CalibratedThreshold is the same 2 x P90 rule the online trainer
      // applies per refit generation.
      auto calibrated = CalibratedThreshold(tenant.scores);
      MACE_CHECK_OK(calibrated.status());
      tenant.threshold = *calibrated;
      tenant.calibrated = true;
      history.SetThreshold(tenant.history_id, tenant.threshold);
      std::printf("%s calibrated threshold after %zu scores: %.4f "
                  "(2 x P90)\n",
                  tenant.name.c_str(), tenant.scores.size(),
                  tenant.threshold);
    }
    const bool alert = tenant.calibrated && score > tenant.threshold;
    tenant.alerts.push_back(alert ? 1 : 0);
    if (alert && tenant.alert_count < 4) {
      std::printf("  ALERT %s at step %zu (score %.3f, emitted at input "
                  "step %zu — latency %zu)\n",
                  tenant.name.c_str(), tenant.alerts.size() - 1, score,
                  input_step, input_step - (tenant.alerts.size() - 1));
    }
    tenant.alert_count += alert;
  };

  const size_t length = dataset.services[0].test.length();
  for (size_t t = 0; t < length; ++t) {
    for (size_t s = 0; s < num_tenants; ++s) {
      const ts::TimeSeries& test = dataset.services[s].test;
      if (t >= test.length()) continue;
      const std::vector<double> scores =
          score_step(tenants[s].name, static_cast<int>(s), test.values()[t]);
      for (double score : scores) consume(tenants[s], score, t);
    }
    // Synchronous pump: refits run on this thread between steps (the
    // deterministic single-threaded flavor; servers use Start()).
    if (trainer.has_value() && (t + 1) % 128 == 0) trainer->PumpRefits();
    if ((t + 1) % kSnapshotEvery == 0) {
      PrintSnapshot(t + 1, (*frontend)->Stats(), history,
                    static_cast<int64_t>(tenants[0].alerts.size()) - 1,
                    static_cast<int64_t>(kSnapshotEvery), options.top_k);
      if (trainer.has_value()) {
        const online::OnlineTrainer::Stats s = trainer->stats();
        std::printf(
            "             online: %llu refits %llu promoted %llu skipped "
            "%llu drift alarms\n",
            static_cast<unsigned long long>(s.refits),
            static_cast<unsigned long long>(s.promotions),
            static_cast<unsigned long long>(s.skips),
            static_cast<unsigned long long>(s.drift_alarms));
      }
    }
  }
  // Close drains the windowed tail each stream still owes.
  for (size_t s = 0; s < num_tenants; ++s) {
    if (options.in_process) {
      auto tail = (*frontend)->Close(tenants[s].name, static_cast<int>(s));
      MACE_CHECK_OK(tail.status());
      for (double score : *tail) consume(tenants[s], score, length - 1);
    } else {
      auto tail =
          client->CloseSession(tenants[s].name, static_cast<int32_t>(s));
      MACE_CHECK_OK(tail.status());
      MACE_CHECK_OK(tail->ToStatus());
      for (double score : tail->scores) consume(tenants[s], score,
                                                length - 1);
    }
  }

  std::printf("\nstream done: %zu tenants x %zu steps\n", num_tenants,
              length);
  if (trainer.has_value()) {
    const online::OnlineTrainer::Stats s = trainer->stats();
    std::printf(
        "online learning: %llu streams, %llu refits (%llu failed), %llu "
        "promotions, %llu skips, %llu drift alarms — consensus %s over "
        "K=%zu generations decided the history anomaly bits\n",
        static_cast<unsigned long long>(s.streams),
        static_cast<unsigned long long>(s.refits),
        static_cast<unsigned long long>(s.refit_failures),
        static_cast<unsigned long long>(s.promotions),
        static_cast<unsigned long long>(s.skips),
        static_cast<unsigned long long>(s.drift_alarms),
        online::ConsensusKindName(options.consensus),
        trainer->config().ensemble_size);
  }
  // Evaluate each tenant only past its calibration warm-up.
  for (const TenantState& tenant : tenants) {
    const size_t s = &tenant - tenants.data();
    const ts::TimeSeries& test = dataset.services[s].test;
    const size_t warmup = fixed_threshold ? 0 : kCalibration;
    if (tenant.alerts.size() <= warmup) continue;
    std::vector<uint8_t> eval_alerts(tenant.alerts.begin() + warmup,
                                     tenant.alerts.end());
    std::vector<uint8_t> eval_labels(
        test.labels().begin() + warmup,
        test.labels().begin() + tenant.alerts.size());
    const eval::PrMetrics m = eval::FromConfusion(eval::Confuse(
        eval::PointAdjust(eval_alerts, eval_labels), eval_labels));
    std::printf("%s online detection past warm-up: P=%.3f R=%.3f F1=%.3f "
                "(%zu alert steps)\n",
                tenant.name.c_str(), m.precision, m.recall, m.f1,
                tenant.alert_count);
  }
  return 0;
}
