// Deployment workflow: export a workload to CSV (the layout a real
// monitoring pipeline would produce), load it back, train a unified MACE
// model, persist the model to disk, restore it in a "fresh process" and
// score — including threshold-free ranking quality (AUROC/AUPRC).
//
// Run: ./build/examples/deploy_and_restore

#include <cstdio>
#include <filesystem>

#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "common/math_utils.h"
#include "eval/roc.h"
#include "ts/io.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;
  namespace fs = std::filesystem;

  const fs::path root = fs::temp_directory_path() / "mace_deploy_demo";
  fs::create_directories(root);

  // 1. A monitoring pipeline dumps per-service CSV directories.
  ts::DatasetProfile profile = ts::Jd1Profile();
  profile.num_services = 4;
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  for (const ts::ServiceData& svc : dataset.services) {
    const fs::path dir = root / svc.name;
    fs::create_directories(dir);
    MACE_CHECK_OK(ts::SaveServiceDir(dir.string(), svc));
  }
  std::printf("exported %zu services under %s\n", dataset.services.size(),
              root.c_str());

  // 2. Load the CSV directories back (what an adopter with real data does).
  std::vector<ts::ServiceData> services;
  for (const ts::ServiceData& svc : dataset.services) {
    auto loaded = ts::LoadServiceDir((root / svc.name).string(), svc.name);
    MACE_CHECK_OK(loaded.status());
    services.push_back(std::move(*loaded));
  }

  // 3. Train and persist.
  core::MaceConfig config;
  config.epochs = 4;
  core::MaceDetector trained(config);
  MACE_CHECK_OK(trained.Fit(services));
  const std::string model_path = (root / "model.mace").string();
  MACE_CHECK_OK(trained.Save(model_path));
  std::printf("saved model (%lld parameters) to %s\n",
              static_cast<long long>(trained.ParameterCount()),
              model_path.c_str());

  // 4. "Fresh process": restore and score without retraining.
  auto restored = core::MaceDetector::Load(model_path);
  MACE_CHECK_OK(restored.status());
  std::printf("\n%-12s %8s %8s %8s %8s\n", "service", "F1", "AUROC",
              "AUPRC", "POT-F1");
  for (size_t s = 0; s < services.size(); ++s) {
    auto scores = restored->Score(static_cast<int>(s), services[s].test);
    MACE_CHECK_OK(scores.status());
    auto best =
        eval::BestF1Threshold(*scores, services[s].test.labels());
    auto ranking =
        eval::ComputeRanking(*scores, services[s].test.labels());
    auto pot = PotThreshold(*scores, /*risk=*/0.02, 0.9);
    MACE_CHECK_OK(best.status());
    MACE_CHECK_OK(ranking.status());
    MACE_CHECK_OK(pot.status());
    const eval::PrMetrics pot_metrics = eval::EvaluateAtThreshold(
        *scores, services[s].test.labels(), *pot);
    std::printf("%-12s %8.3f %8.3f %8.3f %8.3f\n",
                services[s].name.c_str(), best->metrics.f1, ranking->auroc,
                ranking->auprc, pot_metrics.f1);
  }

  fs::remove_all(root);
  return 0;
}
