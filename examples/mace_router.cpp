// The scale-out fan-in router: consistent-hashes tenants across N
// mace_serve_backend processes (src/net/router.h) and forwards MWIREv1
// frames without decoding observations.
//
// Run: ./build/examples/mace_router --backends 127.0.0.1:7101,127.0.0.1:7102
//
// Flags:
//   --backends LIST  comma-separated host:port backends (required)
//   --listen-port N  TCP port (default 0 = ephemeral; announced on
//                    stdout as "MACE_LISTENING port=N")
//   --vnodes N       virtual nodes per backend on the ring (default 64)
//   --max-inflight N per-backend in-flight cap before rejecting
//                    (default 8192)
//   --qos-rate R     per-tenant admission rate/s (default 0 = QoS off)
//   --qos-burst B    QoS bucket burst (default 0 = max(rate, 1))
//
// Runs until SIGTERM/SIGINT. Numeric flags parse strictly; argument
// errors exit 2.

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "net/router.h"
#include "net/spawn.h"

namespace {

volatile sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

int ParseIntOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const int value = std::stoi(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs an integer, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

double ParseDoubleOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs a number, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;

  net::RouterOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--backends") {
      options.backends = SplitCommas(next());
    } else if (arg == "--listen-port") {
      options.port = static_cast<uint16_t>(
          ParseIntOrDie(arg, next()));
    } else if (arg == "--vnodes") {
      options.vnodes = static_cast<size_t>(ParseIntOrDie(arg, next()));
    } else if (arg == "--max-inflight") {
      options.max_inflight_per_backend =
          static_cast<size_t>(ParseIntOrDie(arg, next()));
    } else if (arg == "--qos-rate") {
      options.qos.rate_per_tenant = ParseDoubleOrDie(arg, next());
    } else if (arg == "--qos-burst") {
      options.qos.burst = ParseDoubleOrDie(arg, next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.backends.empty()) {
    std::fprintf(stderr, "--backends is required\n");
    std::exit(2);
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  auto router = net::Router::Start(options);
  MACE_CHECK_OK(router.status());

  std::fputs(net::ListeningLine(router.value()->port()).c_str(), stdout);
  std::fflush(stdout);
  std::fprintf(stderr, "router pid %d on port %u, %zu backends\n",
               getpid(), unsigned{router.value()->port()},
               options.backends.size());

  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  router.value()->Stop();
  std::fprintf(stderr,
               "router pid %d: clean shutdown — forwarded %llu rejected "
               "%llu backend_errors %llu\n",
               getpid(),
               static_cast<unsigned long long>(router.value()->forwarded()),
               static_cast<unsigned long long>(router.value()->rejected()),
               static_cast<unsigned long long>(
                   router.value()->backend_errors()));
  return 0;
}
