// Transfer to unseen services (the paper's Table VIII scenario): a cloud
// operator onboards new services without retraining. MACE only needs the
// new service's train split for preprocessing — scaler and normal-pattern
// subspace — while the learned network stays frozen.
//
// Run: ./build/examples/transfer_unseen_services

#include <cstdio>

#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;

  ts::DatasetProfile profile = ts::Jd1Profile();
  profile.num_services = 16;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  // Train on the first 8 services only.
  const std::vector<ts::ServiceData> train_group(
      dataset.services.begin(), dataset.services.begin() + 8);
  core::MaceConfig config;
  config.epochs = 5;
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(train_group));
  std::printf("trained a unified model on services 0-7\n\n");

  // Onboard services 8-15 with zero retraining.
  std::printf("%-12s %10s %10s %10s\n", "new service", "precision",
              "recall", "f1");
  std::vector<eval::PrMetrics> metrics;
  for (size_t s = 8; s < dataset.services.size(); ++s) {
    const ts::ServiceData& svc = dataset.services[s];
    auto scores = detector.ScoreUnseen(svc);
    MACE_CHECK_OK(scores.status());
    auto best = eval::BestF1Threshold(*scores, svc.test.labels());
    MACE_CHECK_OK(best.status());
    metrics.push_back(best->metrics);
    std::printf("%-12s %10.3f %10.3f %10.3f\n", svc.name.c_str(),
                best->metrics.precision, best->metrics.recall,
                best->metrics.f1);
  }
  const eval::PrMetrics avg = eval::MacroAverage(metrics);
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "macro avg", avg.precision,
              avg.recall, avg.f1);
  std::printf(
      "\nonboarding cost per service: fit a scaler + count dominant "
      "Fourier bases — no gradient steps\n");
  return 0;
}
