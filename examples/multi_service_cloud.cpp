// Multi-service cloud monitoring scenario (the paper's C1): one unified
// MACE model serves ten services with very different normal patterns,
// next to a unified dense-autoencoder baseline for contrast. Also shows
// the per-service normal-pattern subspaces that make this possible, and
// production-style POT thresholding.
//
// Run: ./build/examples/multi_service_cloud

#include <cstdio>

#include "baselines/registry.h"
#include "common/math_utils.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;

  ts::DatasetProfile profile = ts::SmdProfile();  // most diverse patterns
  profile.num_services = 10;
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  std::printf("workload: %zu services, %d features, %zu train steps each\n",
              dataset.services.size(), profile.num_features,
              profile.train_length);

  // --- unified MACE --------------------------------------------------------
  core::MaceConfig config;
  config.epochs = 5;
  core::MaceDetector mace(config);
  MACE_CHECK_OK(mace.Fit(dataset.services));

  std::printf("\nper-service normal-pattern subspaces (selected bases):\n");
  for (size_t s = 0; s < mace.subspaces().size(); ++s) {
    std::printf("  %-12s:", dataset.services[s].name.c_str());
    for (int b : mace.subspaces()[s].bases) std::printf(" %d", b);
    std::printf("\n");
  }

  // --- unified baseline for contrast ---------------------------------------
  auto baseline =
      baselines::MakeDetector("DenseAE", baselines::TrainOptions{});
  MACE_CHECK_OK(baseline.status());
  MACE_CHECK_OK((*baseline)->Fit(dataset.services));

  std::printf("\n%-12s %16s %16s\n", "service", "MACE F1", "DenseAE F1");
  std::vector<eval::PrMetrics> mace_metrics, baseline_metrics;
  for (size_t s = 0; s < dataset.services.size(); ++s) {
    const ts::ServiceData& svc = dataset.services[s];
    auto mace_scores = mace.Score(static_cast<int>(s), svc.test);
    auto base_scores = (*baseline)->Score(static_cast<int>(s), svc.test);
    MACE_CHECK_OK(mace_scores.status());
    MACE_CHECK_OK(base_scores.status());
    auto mace_best = eval::BestF1Threshold(*mace_scores, svc.test.labels());
    auto base_best = eval::BestF1Threshold(*base_scores, svc.test.labels());
    mace_metrics.push_back(mace_best->metrics);
    baseline_metrics.push_back(base_best->metrics);
    std::printf("%-12s %16.3f %16.3f\n", svc.name.c_str(),
                mace_best->metrics.f1, base_best->metrics.f1);
  }
  std::printf("%-12s %16.3f %16.3f\n", "macro avg",
              eval::MacroAverage(mace_metrics).f1,
              eval::MacroAverage(baseline_metrics).f1);

  // --- production thresholding (POT) ----------------------------------------
  // In production there are no labels: calibrate a threshold on the scores
  // with peaks-over-threshold instead of the best-F1 oracle sweep.
  const ts::ServiceData& svc = dataset.services[0];
  auto scores = mace.Score(0, svc.test);
  MACE_CHECK_OK(scores.status());
  auto threshold = PotThreshold(*scores, /*risk=*/0.02, 0.9);
  MACE_CHECK_OK(threshold.status());
  const eval::PrMetrics pot =
      eval::EvaluateAtThreshold(*scores, svc.test.labels(), *threshold);
  std::printf(
      "\nPOT threshold on %s (risk 2%%): threshold=%.3f P=%.3f R=%.3f "
      "F1=%.3f\n",
      svc.name.c_str(), *threshold, pot.precision, pot.recall, pot.f1);
  return 0;
}
