// Multi-tenant serving demo (the paper's C2 at fleet scale): replays
// observation traffic from many simulated tenants at a target rate,
// printing a live dashboard line and hot-swapping the model halfway
// through — in-flight sessions drain on the model they opened with, new
// sessions open on the new one.
//
// By default the traffic goes over the real MWIREv1 wire: the demo
// starts the epoll front door on a loopback socket and replays through
// a WireClient, exactly the bytes a remote tenant would send. --in-process
// skips the socket and submits straight into the sharded pool (the
// pre-scale-out path, kept for overhead comparison).
//
// Run: ./build/examples/mace_served
//      ./build/examples/mace_served --services 96 --shards 8
//          --rate 50000 --seconds 6 --policy shed
//
// Flags:
//   --services N     simulated tenants (default 64)
//   --shards N       worker shards (default 4)
//   --rate N         target observations/second across all tenants
//                    (default 20000; 0 = as fast as possible)
//   --seconds N      replay duration (default 4)
//   --policy P       block | shed | latest (default block)
//   --non-finite P   reject | impute | propagate (default reject): what
//                    sessions do with NaN/Inf observations
//   --in-process     submit directly to the pool instead of through the
//                    loopback wire protocol
//
// Numeric flags parse strictly (the whole value must be a number) and
// argument errors exit with status 2.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/mace_detector.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/frontend.h"
#include "ts/profiles.h"
#include "ts/sanitize.h"

namespace {

struct Options {
  int services = 64;
  int shards = 4;
  double rate = 20000.0;
  double seconds = 4.0;
  mace::serve::OverloadPolicy policy = mace::serve::OverloadPolicy::kBlock;
  mace::ts::NonFinitePolicy non_finite =
      mace::ts::NonFinitePolicy::kReject;
  bool in_process = false;
};

/// Strict numeric parsers: atoi/atof silently read "8x" as 8 and "x" as
/// 0, so a typo would quietly reshape the benchmark; here the whole value
/// must parse or the process exits 2 naming the flag.
int ParseIntOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const int value = std::stoi(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs an integer, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

double ParseDoubleOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs a number, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--services") {
      options.services = ParseIntOrDie(arg, next());
    } else if (arg == "--shards") {
      options.shards = ParseIntOrDie(arg, next());
    } else if (arg == "--rate") {
      options.rate = ParseDoubleOrDie(arg, next());
    } else if (arg == "--seconds") {
      options.seconds = ParseDoubleOrDie(arg, next());
    } else if (arg == "--non-finite") {
      auto policy = mace::ts::ParseNonFinitePolicy(next());
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().message().c_str());
        std::exit(2);
      }
      options.non_finite = *policy;
    } else if (arg == "--policy") {
      const std::string policy = next();
      if (policy == "block") {
        options.policy = mace::serve::OverloadPolicy::kBlock;
      } else if (policy == "shed") {
        options.policy = mace::serve::OverloadPolicy::kShed;
      } else if (policy == "latest") {
        options.policy = mace::serve::OverloadPolicy::kLatestOnly;
      } else {
        std::fprintf(stderr, "unknown --policy %s\n", policy.c_str());
        std::exit(2);
      }
    } else if (arg == "--in-process") {
      options.in_process = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  MACE_CHECK(options.services > 0 && options.shards > 0 &&
             options.seconds > 0)
      << "--services/--shards/--seconds must be positive";
  return options;
}

std::shared_ptr<mace::core::MaceDetector> FitModel(
    const mace::ts::Dataset& dataset) {
  mace::core::MaceConfig config;
  config.epochs = 2;
  config.score_stride = config.window;  // serving-tuned: tiled windows
  auto model = std::make_shared<mace::core::MaceDetector>(config);
  MACE_CHECK_OK(model->Fit(dataset.services));
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;
  using Clock = std::chrono::steady_clock;

  const Options options = ParseArgs(argc, argv);

  // Four fitted normal patterns; tenants replay them round-robin. Two
  // independently fitted models stand in for "model v1 on disk" and "the
  // retrained v2 an operator pushes mid-flight".
  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 4;
  profile.test_length = 2048;
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  std::printf("fitting v1 + v2 models on %zu services...\n",
              dataset.services.size());
  auto model_v1 = FitModel(dataset);
  auto model_v2 = FitModel(dataset);

  serve::ServeConfig serve_config;
  serve_config.num_shards = options.shards;
  serve_config.overload_policy = options.policy;
  serve_config.non_finite_policy = options.non_finite;
  auto frontend = serve::ServeFrontend::Create(model_v1, serve_config);
  MACE_CHECK_OK(frontend.status());

  // Default path: real loopback sockets through the MWIREv1 front door.
  std::unique_ptr<net::ScoreServer> server;
  std::unique_ptr<net::WireClient> client;
  if (!options.in_process) {
    auto started =
        net::ScoreServer::Start(frontend.value().get(), {});
    MACE_CHECK_OK(started.status());
    server = std::move(started).value();
    auto connected =
        net::WireClient::Connect("127.0.0.1", server->port());
    MACE_CHECK_OK(connected.status());
    client = std::move(connected).value();
    MACE_CHECK_OK(client->Ping());
  }

  std::vector<std::string> tenants;
  for (int k = 0; k < options.services; ++k) {
    tenants.push_back("tenant-" + std::to_string(k));
  }

  std::printf(
      "replaying %d tenants at %.0f obs/s for %.1fs — %d shards, "
      "policy=%s, non-finite=%s, transport=%s\n\n",
      options.services, options.rate, options.seconds, options.shards,
      serve::OverloadPolicyName(options.policy),
      ts::NonFinitePolicyName(options.non_finite),
      options.in_process ? "in-process" : "wire (loopback)");

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.seconds));
  // One "round" submits one observation per tenant; pace rounds so the
  // aggregate submission rate meets --rate.
  const auto round_interval =
      options.rate > 0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(options.services /
                                              options.rate))
          : Clock::duration::zero();
  auto next_round = start;
  auto next_dashboard = start;
  bool swapped = false;
  const auto swap_at = start + (deadline - start) / 2;
  size_t step = 0;
  while (Clock::now() < deadline) {
    if (options.in_process) {
      for (int k = 0; k < options.services; ++k) {
        const int service = k % static_cast<int>(dataset.services.size());
        const auto& test =
            dataset.services[static_cast<size_t>(service)].test;
        auto f = (*frontend)->Submit(tenants[static_cast<size_t>(k)],
                                     service,
                                     test.values()[step % test.length()]);
        MACE_CHECK_OK(f.status());
        // Futures are discarded: the dashboard reads aggregate stats, and
        // under shed policies a dropped observation resolves immediately.
      }
    } else {
      // One round = one pipelined burst of score frames, then drain the
      // matching responses — bounded outstanding bytes, real round trips.
      for (int k = 0; k < options.services; ++k) {
        const int service = k % static_cast<int>(dataset.services.size());
        const auto& test =
            dataset.services[static_cast<size_t>(service)].test;
        wire::ScoreRequest request;
        request.tenant = tenants[static_cast<size_t>(k)];
        request.service = service;
        request.values = test.values()[step % test.length()];
        MACE_CHECK_OK(client->SendScore(request).status());
      }
      for (int k = 0; k < options.services; ++k) {
        MACE_CHECK_OK(client->NextResponse().status());
      }
    }
    ++step;

    const auto now = Clock::now();
    if (!swapped && now >= swap_at) {
      MACE_CHECK_OK((*frontend)->Swap(model_v2));
      swapped = true;
      std::printf("  >>> hot swap to v2 (live sessions drain on v1)\n");
    }
    if (now >= next_dashboard) {
      std::printf("  %s\n", (*frontend)->Stats().FormatLine().c_str());
      next_dashboard = now + std::chrono::milliseconds(500);
    }
    if (round_interval > Clock::duration::zero()) {
      next_round += round_interval;
      if (next_round > now) std::this_thread::sleep_until(next_round);
    }
  }

  (*frontend)->Flush();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  const serve::ShardStats totals = (*frontend)->Stats().Totals();
  std::printf("\nfinal: %s\n", (*frontend)->Stats().FormatLine().c_str());
  std::printf(
      "replayed %llu observations in %.2fs (%.0f obs/s achieved, "
      "%.0f targeted), shed %llu\n",
      static_cast<unsigned long long>(totals.submitted), elapsed,
      static_cast<double>(totals.submitted) / elapsed, options.rate,
      static_cast<unsigned long long>(totals.shed));
  return 0;
}
