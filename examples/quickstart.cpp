// Quickstart: train a unified MACE model on a group of synthetic services
// and detect anomalies in one service's test split.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/status.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "ts/profiles.h"

int main() {
  using namespace mace;

  // 1. Generate a small multi-service workload (SMD-like: diverse normal
  //    patterns, ~4 % anomalies) and take a group of 10 services.
  ts::DatasetProfile profile = ts::SmdProfile();
  profile.num_services = 10;
  const ts::Dataset dataset = ts::GenerateDataset(profile);

  // 2. Train one unified MACE model on all 10 services.
  core::MaceConfig config;
  config.epochs = 5;
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(dataset.services));
  std::printf("trained unified MACE on %zu services (%lld parameters)\n",
              dataset.services.size(),
              static_cast<long long>(detector.ParameterCount()));

  // 3. Score each service's test split and evaluate with the
  //    point-adjusted best-F1 protocol.
  std::vector<eval::PrMetrics> per_service;
  for (size_t s = 0; s < dataset.services.size(); ++s) {
    const ts::ServiceData& service = dataset.services[s];
    Result<std::vector<double>> scores =
        detector.Score(static_cast<int>(s), service.test);
    MACE_CHECK_OK(scores.status());
    Result<eval::ThresholdResult> best =
        eval::BestF1Threshold(*scores, service.test.labels());
    MACE_CHECK_OK(best.status());
    per_service.push_back(best->metrics);
    std::printf("  %-12s P=%.3f R=%.3f F1=%.3f (threshold %.4f)\n",
                service.name.c_str(), best->metrics.precision,
                best->metrics.recall, best->metrics.f1, best->threshold);
  }
  const eval::PrMetrics avg = eval::MacroAverage(per_service);
  std::printf("macro average: P=%.3f R=%.3f F1=%.3f\n", avg.precision,
              avg.recall, avg.f1);
  return 0;
}
