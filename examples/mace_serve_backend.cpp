// One scale-out scoring backend: a ServeFrontend behind the MWIREv1
// epoll front door (src/net/server.h). The router process
// (mace_router) consistent-hashes tenants across N of these.
//
// Run: ./build/examples/mace_serve_backend --model /tmp/model.mace
//      ./build/examples/mace_serve_backend --services 4 --shards 2
//
// Flags:
//   --listen-port N  TCP port (default 0 = kernel-assigned; the actual
//                    port is announced on stdout as
//                    "MACE_LISTENING port=N" once accepting)
//   --model PATH     load a saved model (MaceDetector or
//                    ChannelAwareDetector, sniffed by magic) instead of
//                    fitting a
//                    synthetic one (spawning harnesses fit once, save,
//                    and pass the file to every backend so all processes
//                    score bit-identically)
//   --services N     synthetic-fit services when --model is absent
//                    (default 4)
//   --shards N       worker shards (default 4)
//   --queue N        per-shard queue capacity (default 1024)
//   --policy P       block | shed | latest (default block)
//   --non-finite P   reject | impute | propagate (default reject)
//   --qos-rate R     per-tenant admission rate/s (default 0 = QoS off)
//   --qos-burst B    QoS bucket burst (default 0 = max(rate, 1))
//
// Runs until SIGTERM/SIGINT, then shuts the server and pool down
// cleanly (exit 0). Numeric flags parse strictly; argument errors
// exit 2.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "channel/model_io.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "net/server.h"
#include "net/spawn.h"
#include "serve/frontend.h"
#include "ts/profiles.h"
#include "ts/sanitize.h"

namespace {

volatile sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

struct Options {
  int listen_port = 0;
  std::string model_path;
  int services = 4;
  int shards = 4;
  int queue = 1024;
  mace::serve::OverloadPolicy policy = mace::serve::OverloadPolicy::kBlock;
  mace::ts::NonFinitePolicy non_finite =
      mace::ts::NonFinitePolicy::kReject;
  double qos_rate = 0.0;
  double qos_burst = 0.0;
};

int ParseIntOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const int value = std::stoi(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs an integer, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

double ParseDoubleOrDie(const std::string& flag, const char* text) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (text[used] != '\0') throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s needs a number, got '%s'\n", flag.c_str(),
                 text);
    std::exit(2);
  }
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen-port") {
      options.listen_port = ParseIntOrDie(arg, next());
    } else if (arg == "--model") {
      options.model_path = next();
    } else if (arg == "--services") {
      options.services = ParseIntOrDie(arg, next());
    } else if (arg == "--shards") {
      options.shards = ParseIntOrDie(arg, next());
    } else if (arg == "--queue") {
      options.queue = ParseIntOrDie(arg, next());
    } else if (arg == "--qos-rate") {
      options.qos_rate = ParseDoubleOrDie(arg, next());
    } else if (arg == "--qos-burst") {
      options.qos_burst = ParseDoubleOrDie(arg, next());
    } else if (arg == "--non-finite") {
      auto policy = mace::ts::ParseNonFinitePolicy(next());
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().message().c_str());
        std::exit(2);
      }
      options.non_finite = *policy;
    } else if (arg == "--policy") {
      const std::string policy = next();
      if (policy == "block") {
        options.policy = mace::serve::OverloadPolicy::kBlock;
      } else if (policy == "shed") {
        options.policy = mace::serve::OverloadPolicy::kShed;
      } else if (policy == "latest") {
        options.policy = mace::serve::OverloadPolicy::kLatestOnly;
      } else {
        std::fprintf(stderr, "unknown --policy %s\n", policy.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  MACE_CHECK(options.listen_port >= 0 && options.listen_port <= 65535)
      << "--listen-port out of range";
  MACE_CHECK(options.services > 0 && options.shards > 0 &&
             options.queue > 0)
      << "--services/--shards/--queue must be positive";
  return options;
}

std::shared_ptr<const mace::core::ServingModel> MakeModel(
    const Options& options) {
  if (!options.model_path.empty()) {
    // Magic-sniffing loader: accepts a saved MaceDetector (MACEv1) or a
    // saved ChannelAwareDetector (MCHANv1), so a fleet can serve either
    // variant from the same binary.
    auto loaded = mace::channel::LoadServingModel(options.model_path);
    MACE_CHECK_OK(loaded.status());
    return std::move(loaded).value();
  }
  mace::ts::DatasetProfile profile = mace::ts::SmdProfile();
  profile.num_services = options.services;
  profile.test_length = 512;
  const mace::ts::Dataset dataset = mace::ts::GenerateDataset(profile);
  mace::core::MaceConfig config;
  config.epochs = 2;
  config.score_stride = config.window;
  auto model = std::make_shared<mace::core::MaceDetector>(config);
  MACE_CHECK_OK(model->Fit(dataset.services));
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mace;

  const Options options = ParseArgs(argc, argv);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::shared_ptr<const core::ServingModel> model = MakeModel(options);

  serve::ServeConfig serve_config;
  serve_config.num_shards = options.shards;
  serve_config.queue_capacity = static_cast<size_t>(options.queue);
  serve_config.overload_policy = options.policy;
  serve_config.non_finite_policy = options.non_finite;
  auto frontend = serve::ServeFrontend::Create(model, serve_config);
  MACE_CHECK_OK(frontend.status());

  net::ScoreServerOptions server_options;
  server_options.port = static_cast<uint16_t>(options.listen_port);
  server_options.qos.rate_per_tenant = options.qos_rate;
  server_options.qos.burst = options.qos_burst;
  auto server =
      net::ScoreServer::Start(frontend.value().get(), server_options);
  MACE_CHECK_OK(server.status());

  // The handshake line the spawning parent blocks on; stdout is a pipe,
  // so flush explicitly.
  std::fputs(net::ListeningLine(server.value()->port()).c_str(), stdout);
  std::fflush(stdout);
  std::fprintf(stderr, "backend pid %d serving on port %u\n", getpid(),
               unsigned{server.value()->port()});

  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.value()->Stop();
  std::fprintf(stderr, "backend pid %d: clean shutdown — %s\n", getpid(),
               frontend.value()->Stats().FormatLine().c_str());
  return 0;
}
