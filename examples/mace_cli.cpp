// mace_cli — command-line front end for the library.
//
//   mace_cli train --data <dir> --model <file> [--epochs N] [--gamma-t G]
//       [--fit-threads N] [--batch-size B]
//       <dir> holds one sub-directory per service, each with train.csv and
//       test.csv (last column of test.csv = 0/1 label; see ts/io.h).
//       Trains one unified model over all services and saves it.
//       --fit-threads/--batch-size select the data-parallel minibatch
//       trainer; epoch losses are bit-identical for any thread count.
//
//   mace_cli score --data <dir> --model <file> [--out <csv>]
//       Restores a model and writes per-step anomaly scores per service.
//
//   mace_cli eval  --data <dir> --model <file> [--risk R]
//       Restores a model and prints best-F1 / AUROC / POT metrics.
//
//   mace_cli score ... --history-out <file> [--anomaly-threshold T]
//       [--history-capacity N]
//       Additionally records every per-step score in an anomaly history
//       store (tenant = service name, anomaly bit = score > T) and writes
//       it as an MHSNAPv1 snapshot for the history commands below.
//
//   mace_cli ping --port N [--host H] [--count N]
//       Health-probe a running mace_serve_backend / mace_router over the
//       MWIREv1 wire protocol: RTT min/mean/max plus the peer's stats
//       line (no --data needed).
//
//   mace_cli history <top|rate|correlate> --snapshot <file>
//       Fleet observability over a history snapshot (no --data needed):
//         top        [--top-k K] [--from T0] [--to T1]
//                    rank tenants by severity (anomaly rate x mean excess)
//         rate       --tenant NAME [--bucket W] [--from T0] [--to T1]
//                    windowed anomaly-rate series of one tenant
//         correlate  [--window W] [--min-corr J] [--max-tenants N]
//                    tenant pairs whose anomalies co-occur (Jaccard over
//                    aligned windows), clustered into components
//
// Observability (train/score/eval):
//   --metrics-out <file>   write all obs metrics after the run; Prometheus
//                          text exposition, or JSON when the path ends in
//                          .json. Also prints a summary table on stderr.
//   --trace                enable detailed tracing (same as MACE_TRACE=1).
//   --trace-out <file>     write collected spans as Chrome trace-viewer
//                          JSON (implies --trace).
//
// Example (synthesize a workload first):
//   mace_cli synth --data /tmp/demo --profile SMD --services 4
//   mace_cli train --data /tmp/demo --model /tmp/demo/model.mace
//   mace_cli eval  --data /tmp/demo --model /tmp/demo/model.mace

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "common/csv.h"
#include "common/math_utils.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "eval/roc.h"
#include "history/query.h"
#include "history/snapshot.h"
#include "history/store.h"
#include "net/client.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "ts/io.h"
#include "ts/profiles.h"

namespace {

using namespace mace;
namespace fs = std::filesystem;

/// --key value flag parser with boolean "--flag" support; positional
/// arguments, unknown syntax, and a trailing --key without its value are
/// rejected with a message naming the offending argument.
class Flags {
 public:
  Flags(int argc, char** argv, int first,
        std::set<std::string> boolean_keys = {"trace"})
      : boolean_keys_(std::move(boolean_keys)) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        error_ = "unexpected positional argument '" +
                 std::string(argv[i]) + "'";
        return;
      }
      const std::string key = argv[i] + 2;
      if (key.empty()) {
        error_ = "empty flag '--'";
        return;
      }
      if (boolean_keys_.count(key) > 0) {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag '--" + key + "' is missing its value";
        return;
      }
      if (std::strncmp(argv[i + 1], "--", 2) == 0) {
        error_ = "flag '--" + key + "' is missing its value (got '" +
                 std::string(argv[i + 1]) + "')";
        return;
      }
      values_[key] = argv[++i];
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }

  /// Numeric getters parse strictly: the whole value must be numeric —
  /// "8x", "" or overflow records an argument error (first one wins;
  /// check via `error`) instead of silently truncating or throwing out
  /// of main.
  int GetIntStrict(const std::string& key, int fallback,
                   std::string* error) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      size_t used = 0;
      const int value = std::stoi(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return value;
    } catch (const std::exception&) {
      if (error->empty()) {
        *error = "flag '--" + key + "' needs an integer, got '" +
                 it->second + "'";
      }
      return fallback;
    }
  }
  int64_t GetInt64Strict(const std::string& key, int64_t fallback,
                         std::string* error) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      size_t used = 0;
      const long long value = std::stoll(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return static_cast<int64_t>(value);
    } catch (const std::exception&) {
      if (error->empty()) {
        *error = "flag '--" + key + "' needs an integer, got '" +
                 it->second + "'";
      }
      return fallback;
    }
  }
  double GetDoubleStrict(const std::string& key, double fallback,
                         std::string* error) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      size_t used = 0;
      const double value = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return value;
    } catch (const std::exception&) {
      if (error->empty()) {
        *error = "flag '--" + key + "' needs a number, got '" + it->second +
                 "'";
      }
      return fallback;
    }
  }

 private:
  std::set<std::string> boolean_keys_;
  std::map<std::string, std::string> values_;
  std::string error_;
};

/// Honors --metrics-out / --trace-out after a command ran: writes the
/// metrics file (Prometheus or JSON by extension), dumps a human summary
/// to stderr, and writes the Chrome trace when requested.
int FinishObservability(const Flags& flags) {
  const std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    const Status status = obs::WriteMetricsFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "\n-- metrics (%s) --\n%s", metrics_out.c_str(),
                 obs::FormatSummaryTable().c_str());
  }
  const std::string trace_out = flags.Get("trace-out", "");
  if (!trace_out.empty()) {
    const std::string trace = obs::TraceRecorder::Get().ExportChromeTrace();
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 obs::TraceRecorder::Get().Events().size(),
                 trace_out.c_str());
  }
  return 0;
}

/// Resolves --non-finite (default "reject") to the shared policy enum;
/// the same value governs CSV ingestion and the detector's own handling.
Result<ts::NonFinitePolicy> PolicyFlag(const Flags& flags) {
  return ts::ParseNonFinitePolicy(flags.Get("non-finite", "reject"));
}

Result<std::vector<ts::ServiceData>> LoadServices(
    const std::string& data, ts::NonFinitePolicy policy) {
  std::vector<ts::ServiceData> services;
  std::vector<std::string> dirs;
  // error_code overload: a missing/unreadable --data must surface as a
  // Status, not an uncaught filesystem_error.
  std::error_code ec;
  for (auto it = fs::directory_iterator(data, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->is_directory(ec)) dirs.push_back(it->path().string());
  }
  if (ec) {
    return Status::NotFound("cannot list data directory '" + data +
                            "': " + ec.message());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const std::string& dir : dirs) {
    MACE_ASSIGN_OR_RETURN(
        ts::ServiceData svc,
        ts::LoadServiceDir(dir, fs::path(dir).filename().string(), policy));
    services.push_back(std::move(svc));
  }
  if (services.empty()) {
    return Status::NotFound("no service directories under '" + data + "'");
  }
  return services;
}

int Synth(const Flags& flags) {
  const std::string data = flags.Get("data", "");
  const std::string profile_name = flags.Get("profile", "SMD");
  ts::DatasetProfile profile = ts::SmdProfile();
  for (const ts::DatasetProfile& p : ts::AllProfiles()) {
    if (p.name == profile_name) profile = p;
  }
  std::string error;
  profile.num_services = flags.GetIntStrict("services", 4, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  for (const ts::ServiceData& svc : dataset.services) {
    const fs::path dir = fs::path(data) / svc.name;
    fs::create_directories(dir);
    MACE_CHECK_OK(ts::SaveServiceDir(dir.string(), svc));
  }
  std::printf("wrote %d services (%s profile) under %s\n",
              profile.num_services, profile.name.c_str(), data.c_str());
  return 0;
}

int Train(const Flags& flags) {
  // Numeric flags parse strictly and the assembled config pre-validates,
  // so a typo ("--batch-size 8x", "--fit-threads 0") is an argument
  // error naming the flag, not an uncaught exception or a CHECK abort.
  std::string error;
  core::MaceConfig config;
  config.epochs = flags.GetIntStrict("epochs", 5, &error);
  config.gamma_t = flags.GetDoubleStrict("gamma-t", config.gamma_t, &error);
  config.gamma_f = flags.GetDoubleStrict("gamma-f", config.gamma_f, &error);
  config.num_bases = flags.GetIntStrict("bases", config.num_bases, &error);
  config.fit_threads =
      flags.GetIntStrict("fit-threads", config.fit_threads, &error);
  config.batch_size =
      flags.GetIntStrict("batch-size", config.batch_size, &error);
  Result<ts::NonFinitePolicy> policy = PolicyFlag(flags);
  if (!policy.ok()) {
    std::fprintf(stderr, "argument error: %s\n",
                 policy.status().message().c_str());
    return 2;
  }
  config.non_finite_policy = *policy;
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }
  const Status valid = core::MaceDetector::ValidateConfig(config);
  if (!valid.ok()) {
    std::fprintf(stderr, "argument error: %s\n", valid.message().c_str());
    return 2;
  }
  auto services = LoadServices(flags.Get("data", ""), *policy);
  if (!services.ok()) {
    std::fprintf(stderr, "data error: %s\n",
                 services.status().ToString().c_str());
    return 1;
  }
  core::MaceDetector detector(config);
  const Status fitted = detector.Fit(*services);
  if (!fitted.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 fitted.ToString().c_str());
    return 1;
  }
  MACE_CHECK_OK(detector.Save(flags.Get("model", "model.mace")));
  std::printf("trained on %zu services (%lld parameters, final loss %.4f); "
              "saved to %s\n",
              services->size(),
              static_cast<long long>(detector.ParameterCount()),
              detector.epoch_losses().back(),
              flags.Get("model", "model.mace").c_str());
  return 0;
}

int Score(const Flags& flags) {
  Result<ts::NonFinitePolicy> policy = PolicyFlag(flags);
  if (!policy.ok()) {
    std::fprintf(stderr, "argument error: %s\n",
                 policy.status().message().c_str());
    return 2;
  }
  std::string error;
  const std::string history_out = flags.Get("history-out", "");
  const double anomaly_threshold =
      flags.GetDoubleStrict("anomaly-threshold", 3.0, &error);
  const int history_capacity =
      flags.GetIntStrict("history-capacity", 1024, &error);
  if (error.empty() &&
      (!std::isfinite(anomaly_threshold) || anomaly_threshold < 0.0)) {
    error = "flag '--anomaly-threshold' must be finite and >= 0";
  }
  if (error.empty() &&
      (history_capacity < 1 || history_capacity > (1 << 24))) {
    error = "flag '--history-capacity' must be in [1, 16777216]";
  }
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }
  std::optional<history::HistoryStore> history;
  if (!history_out.empty()) {
    history.emplace(history::HistoryConfig{
        static_cast<size_t>(history_capacity), anomaly_threshold});
  }
  auto services = LoadServices(flags.Get("data", ""), *policy);
  if (!services.ok()) {
    std::fprintf(stderr, "data error: %s\n",
                 services.status().ToString().c_str());
    return 1;
  }
  // A model file is untrusted input: a corrupt or truncated artifact is a
  // printed error, never an abort.
  auto detector = core::MaceDetector::Load(flags.Get("model", "model.mace"));
  if (!detector.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 detector.status().ToString().c_str());
    return 1;
  }
  // The policy is runtime state, not serialized — re-arm it after Load.
  detector->set_non_finite_policy(*policy);
  const std::string out = flags.Get("out", "");
  for (size_t s = 0; s < services->size(); ++s) {
    auto scores =
        detector->Score(static_cast<int>(s), (*services)[s].test);
    MACE_CHECK_OK(scores.status());
    if (history.has_value()) {
      const history::HistoryStore::TenantId tenant =
          history->Intern((*services)[s].name);
      for (size_t step = 0; step < scores->size(); ++step) {
        history->Append(tenant, static_cast<int64_t>(step), (*scores)[step]);
      }
    }
    if (out.empty()) {
      double max_score = 0.0;
      for (double v : *scores) max_score = std::max(max_score, v);
      std::printf("%-16s %zu steps, max score %.4f\n",
                  (*services)[s].name.c_str(), scores->size(), max_score);
    } else {
      CsvTable table;
      table.columns = {"score"};
      for (double v : *scores) table.rows.push_back({v});
      const std::string path =
          out + "/" + (*services)[s].name + "_scores.csv";
      MACE_CHECK_OK(WriteCsvFile(path, table));
      std::printf("wrote %s\n", path.c_str());
    }
  }
  if (history.has_value()) {
    const Status written =
        history::WriteSnapshot(*history, history_out, anomaly_threshold);
    if (!written.ok()) {
      std::fprintf(stderr, "history snapshot write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote history snapshot %s (%zu tenants)\n",
                history_out.c_str(), history->NumTenants());
  }
  return 0;
}

int Eval(const Flags& flags) {
  std::string error;
  const double risk = flags.GetDoubleStrict("risk", 0.02, &error);
  Result<ts::NonFinitePolicy> policy = PolicyFlag(flags);
  if (!policy.ok() && error.empty()) {
    error = policy.status().message();
  }
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }
  auto services = LoadServices(flags.Get("data", ""), *policy);
  if (!services.ok()) {
    std::fprintf(stderr, "data error: %s\n",
                 services.status().ToString().c_str());
    return 1;
  }
  auto detector = core::MaceDetector::Load(flags.Get("model", "model.mace"));
  if (!detector.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 detector.status().ToString().c_str());
    return 1;
  }
  detector->set_non_finite_policy(*policy);
  std::printf("%-16s %8s %8s %8s %8s\n", "service", "bestF1", "AUROC",
              "AUPRC", "POT-F1");
  std::vector<eval::PrMetrics> all;
  for (size_t s = 0; s < services->size(); ++s) {
    const ts::ServiceData& svc = (*services)[s];
    auto scores = detector->Score(static_cast<int>(s), svc.test);
    MACE_CHECK_OK(scores.status());
    auto best = eval::BestF1Threshold(*scores, svc.test.labels());
    auto ranking = eval::ComputeRanking(*scores, svc.test.labels());
    auto pot = PotThreshold(*scores, risk, 0.9);
    MACE_CHECK_OK(best.status());
    const double auroc = ranking.ok() ? ranking->auroc : 0.0;
    const double auprc = ranking.ok() ? ranking->auprc : 0.0;
    const double pot_f1 =
        pot.ok() ? eval::EvaluateAtThreshold(*scores, svc.test.labels(),
                                             *pot)
                       .f1
                 : 0.0;
    all.push_back(best->metrics);
    std::printf("%-16s %8.3f %8.3f %8.3f %8.3f\n", svc.name.c_str(),
                best->metrics.f1, auroc, auprc, pot_f1);
  }
  const eval::PrMetrics avg = eval::MacroAverage(all);
  std::printf("%-16s %8.3f (P=%.3f R=%.3f)\n", "macro avg", avg.f1,
              avg.precision, avg.recall);
  return 0;
}

/// Oldest/newest timestamp across every tenant of `source` — the default
/// --from/--to range of the history commands. {0, 0} when empty.
std::pair<int64_t, int64_t> HistoryDataRange(
    const history::HistorySource& source) {
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < source.NumTenants(); ++i) {
    source.VisitRange(i, std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max(),
                      [&](history::RecordSpan s) {
                        lo = std::min(lo, s.data[0].timestamp);
                        hi = std::max(hi, s.data[s.size - 1].timestamp);
                      });
  }
  if (lo > hi) return {0, 0};
  return {lo, hi};
}

int History(const std::string& sub, const Flags& flags) {
  if (sub != "top" && sub != "rate" && sub != "correlate") {
    std::fprintf(stderr,
                 "argument error: unknown history command '%s' (expected "
                 "top, rate or correlate)\n",
                 sub.c_str());
    return 2;
  }
  // Validate every flag before touching the snapshot so a typo is always
  // exit 2, never a data error.
  std::string error;
  const std::string snapshot_path = flags.Get("snapshot", "");
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "argument error: --snapshot is required\n");
    return 2;
  }
  const int top_k = flags.GetIntStrict("top-k", 10, &error);
  const int64_t bucket = flags.GetInt64Strict("bucket", 60, &error);
  const int64_t window = flags.GetInt64Strict("window", 16, &error);
  const double min_corr = flags.GetDoubleStrict("min-corr", 0.5, &error);
  const int max_tenants = flags.GetIntStrict("max-tenants", 256, &error);
  flags.GetInt64Strict("from", 0, &error);
  flags.GetInt64Strict("to", 0, &error);
  if (error.empty() && top_k < 1) {
    error = "flag '--top-k' must be >= 1";
  }
  if (error.empty() && max_tenants < 1) {
    error = "flag '--max-tenants' must be >= 1";
  }
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }

  auto reader = history::SnapshotReader::Open(snapshot_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const auto [data_lo, data_hi] = HistoryDataRange(*reader);
  const int64_t from = flags.GetInt64Strict("from", data_lo, &error);
  const int64_t to = flags.GetInt64Strict("to", data_hi, &error);

  if (sub == "top") {
    const auto ranks = history::TopTenants(
        *reader, from, to, static_cast<size_t>(top_k));
    std::printf("%-4s %-24s %10s %8s %10s %9s %9s\n", "#", "tenant",
                "severity", "rate", "excess", "anomalies", "records");
    for (size_t i = 0; i < ranks.size(); ++i) {
      const history::TenantRank& r = ranks[i];
      std::printf("%-4zu %-24s %10.4f %8.4f %10.4f %9llu %9llu\n", i + 1,
                  r.tenant.c_str(), r.severity, r.anomaly_rate,
                  r.mean_excess,
                  static_cast<unsigned long long>(r.anomalies),
                  static_cast<unsigned long long>(r.records));
    }
    if (ranks.empty()) {
      std::printf("no records in [%lld, %lld]\n",
                  static_cast<long long>(from), static_cast<long long>(to));
    }
    return 0;
  }

  if (sub == "rate") {
    const std::string tenant = flags.Get("tenant", "");
    if (tenant.empty()) {
      std::fprintf(stderr,
                   "argument error: history rate needs --tenant\n");
      return 2;
    }
    const auto series =
        history::AnomalyRateSeries(*reader, tenant, from, to, bucket);
    if (!series.ok()) {
      const bool bad_args =
          series.status().code() == StatusCode::kInvalidArgument;
      std::fprintf(stderr, "%s: %s\n",
                   bad_args ? "argument error" : "query error",
                   series.status().message().c_str());
      return bad_args ? 2 : 1;
    }
    std::printf("%-12s %9s %9s %7s\n", "bucket", "records", "anomalies",
                "rate");
    for (const history::RateBucket& b : *series) {
      std::printf("%-12lld %9llu %9llu %7.4f\n",
                  static_cast<long long>(b.start),
                  static_cast<unsigned long long>(b.records),
                  static_cast<unsigned long long>(b.anomalies), b.rate);
    }
    return 0;
  }

  // correlate
  history::CorrelationOptions options;
  options.window_width = window;
  options.min_jaccard = min_corr;
  options.max_tenants = static_cast<size_t>(max_tenants);
  const auto report =
      history::CorrelateAnomalies(*reader, from, to, options);
  if (!report.ok()) {
    const bool bad_args =
        report.status().code() == StatusCode::kInvalidArgument;
    std::fprintf(stderr, "%s: %s\n",
                 bad_args ? "argument error" : "query error",
                 report.status().message().c_str());
    return bad_args ? 2 : 1;
  }
  std::printf("%zu tenants with anomalies%s\n", report->tenants_considered,
              report->truncated ? " (truncated to the most anomalous)" : "");
  std::printf("%-24s %-24s %8s %6s\n", "tenant a", "tenant b", "jaccard",
              "co-win");
  for (const history::CorrelatedPair& p : report->pairs) {
    std::printf("%-24s %-24s %8.4f %6llu\n", p.a.c_str(), p.b.c_str(),
                p.jaccard, static_cast<unsigned long long>(p.co_windows));
  }
  for (size_t c = 0; c < report->clusters.size(); ++c) {
    std::printf("cluster %zu:", c + 1);
    for (const std::string& name : report->clusters[c].tenants) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  if (report->pairs.empty()) {
    std::printf("no correlated pairs at min jaccard %.2f\n", min_corr);
  }
  return 0;
}

/// `mace_cli ping`: round-trip MWIREv1 kPing frames against a running
/// mace_serve_backend / mace_router and print RTTs plus the peer's
/// stats line — the health probe of the scale-out serving path.
int Ping(const Flags& flags) {
  std::string error;
  const std::string host = flags.Get("host", "127.0.0.1");
  const int port = flags.GetIntStrict("port", 0, &error);
  const int count = flags.GetIntStrict("count", 5, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 2;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "ping needs --port (1..65535)\n");
    return 2;
  }
  if (count < 1) {
    std::fprintf(stderr, "--count must be >= 1\n");
    return 2;
  }
  auto client =
      net::WireClient::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().message().c_str());
    return 1;
  }
  double min_us = std::numeric_limits<double>::infinity();
  double max_us = 0.0;
  double sum_us = 0.0;
  for (int i = 0; i < count; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const Status status = (*client)->Ping();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!status.ok()) {
      std::fprintf(stderr, "ping %d failed: %s\n", i + 1,
                   status.message().c_str());
      return 1;
    }
    std::printf("pong from %s:%d — %.0f us\n", host.c_str(), port, us);
    min_us = std::min(min_us, us);
    max_us = std::max(max_us, us);
    sum_us += us;
  }
  std::printf("%d pings: min %.0f / mean %.0f / max %.0f us\n", count,
              min_us, sum_us / count, max_us);
  auto stats = (*client)->Stats();
  if (stats.ok()) {
    std::printf("peer: %s\n", stats->c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: mace_cli <synth|train|score|eval> --data <dir>\n"
      "       mace_cli history <top|rate|correlate> --snapshot <file>\n"
      "       mace_cli ping --port N [--host H] [--count N]\n"
      "  common:  [--model <file>] [--metrics-out <file>] [--trace]\n"
      "           [--trace-out <file>]\n"
      "           [--non-finite reject|impute|propagate]  NaN/Inf policy\n"
      "           for CSV ingestion and scoring (train treats propagate\n"
      "           as reject); default reject.\n"
      "  synth:   [--profile SMD|SMAP|MC|J-D1|J-D2] [--services N]\n"
      "  train:   [--epochs N] [--gamma-t G] [--gamma-f G] [--bases K]\n"
      "           [--fit-threads N] [--batch-size B]\n"
      "  score:   [--out <dir>] [--history-out <file>]\n"
      "           [--anomaly-threshold T] [--history-capacity N]\n"
      "  eval:    [--risk R]\n"
      "  history: top       [--top-k K] [--from T0] [--to T1]\n"
      "           rate      --tenant NAME [--bucket W] [--from] [--to]\n"
      "           correlate [--window W] [--min-corr J] [--max-tenants N]\n"
      "Every --key flag (except --trace) takes exactly one value.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "ping") {
    // Pings a live serving process; no --data involved.
    const Flags flags(argc, argv, 2);
    if (!flags.ok()) {
      std::fprintf(stderr, "argument error: %s\n", flags.error().c_str());
      Usage();
      return 2;
    }
    return Ping(flags);
  }
  if (command == "history") {
    // History queries read a snapshot, not --data; the subcommand is the
    // one positional argument.
    if (argc < 3) {
      Usage();
      return 2;
    }
    const Flags flags(argc, argv, 3);
    if (!flags.ok()) {
      std::fprintf(stderr, "argument error: %s\n", flags.error().c_str());
      Usage();
      return 2;
    }
    if (flags.GetBool("trace") || !flags.Get("trace-out", "").empty()) {
      obs::TraceRecorder::Get().SetDetailed(true);
    }
    int code = History(argv[2], flags);
    if (code == 0) code = FinishObservability(flags);
    return code;
  }
  const Flags flags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "argument error: %s\n", flags.error().c_str());
    Usage();
    return 2;
  }
  if (flags.Get("data", "").empty()) {
    std::fprintf(stderr, "argument error: --data is required\n");
    Usage();
    return 2;
  }
  if (flags.GetBool("trace") || !flags.Get("trace-out", "").empty()) {
    obs::TraceRecorder::Get().SetDetailed(true);
  }
  int code = 2;
  if (command == "synth") {
    code = Synth(flags);
  } else if (command == "train") {
    code = Train(flags);
  } else if (command == "score") {
    code = Score(flags);
  } else if (command == "eval") {
    code = Eval(flags);
  } else {
    Usage();
    return 2;
  }
  if (code == 0) code = FinishObservability(flags);
  return code;
}
