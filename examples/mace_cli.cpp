// mace_cli — command-line front end for the library.
//
//   mace_cli train --data <dir> --model <file> [--epochs N] [--gamma-t G]
//       <dir> holds one sub-directory per service, each with train.csv and
//       test.csv (last column of test.csv = 0/1 label; see ts/io.h).
//       Trains one unified model over all services and saves it.
//
//   mace_cli score --data <dir> --model <file> [--out <csv>]
//       Restores a model and writes per-step anomaly scores per service.
//
//   mace_cli eval  --data <dir> --model <file> [--risk R]
//       Restores a model and prints best-F1 / AUROC / POT metrics.
//
// Example (synthesize a workload first):
//   mace_cli synth --data /tmp/demo --profile SMD --services 4
//   mace_cli train --data /tmp/demo --model /tmp/demo/model.mace
//   mace_cli eval  --data /tmp/demo --model /tmp/demo/model.mace

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "common/csv.h"
#include "common/math_utils.h"
#include "core/mace_detector.h"
#include "eval/metrics.h"
#include "eval/roc.h"
#include "ts/io.h"
#include "ts/profiles.h"

namespace {

using namespace mace;
namespace fs = std::filesystem;

/// Minimal --key value flag parser; positional args are rejected.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
        ok_ = false;
        return;
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    ok_ = (argc - first) % 2 == 0;
  }

  bool ok() const { return ok_; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

Result<std::vector<ts::ServiceData>> LoadServices(const std::string& data) {
  std::vector<ts::ServiceData> services;
  std::vector<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(data)) {
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const std::string& dir : dirs) {
    MACE_ASSIGN_OR_RETURN(
        ts::ServiceData svc,
        ts::LoadServiceDir(dir, fs::path(dir).filename().string()));
    services.push_back(std::move(svc));
  }
  if (services.empty()) {
    return Status::NotFound("no service directories under '" + data + "'");
  }
  return services;
}

int Synth(const Flags& flags) {
  const std::string data = flags.Get("data", "");
  const std::string profile_name = flags.Get("profile", "SMD");
  ts::DatasetProfile profile = ts::SmdProfile();
  for (const ts::DatasetProfile& p : ts::AllProfiles()) {
    if (p.name == profile_name) profile = p;
  }
  profile.num_services = flags.GetInt("services", 4);
  const ts::Dataset dataset = ts::GenerateDataset(profile);
  for (const ts::ServiceData& svc : dataset.services) {
    const fs::path dir = fs::path(data) / svc.name;
    fs::create_directories(dir);
    MACE_CHECK_OK(ts::SaveServiceDir(dir.string(), svc));
  }
  std::printf("wrote %d services (%s profile) under %s\n",
              profile.num_services, profile.name.c_str(), data.c_str());
  return 0;
}

int Train(const Flags& flags) {
  auto services = LoadServices(flags.Get("data", ""));
  MACE_CHECK_OK(services.status());
  core::MaceConfig config;
  config.epochs = flags.GetInt("epochs", 5);
  config.gamma_t = flags.GetDouble("gamma-t", config.gamma_t);
  config.gamma_f = flags.GetDouble("gamma-f", config.gamma_f);
  config.num_bases = flags.GetInt("bases", config.num_bases);
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(*services));
  MACE_CHECK_OK(detector.Save(flags.Get("model", "model.mace")));
  std::printf("trained on %zu services (%lld parameters, final loss %.4f); "
              "saved to %s\n",
              services->size(),
              static_cast<long long>(detector.ParameterCount()),
              detector.epoch_losses().back(),
              flags.Get("model", "model.mace").c_str());
  return 0;
}

int Score(const Flags& flags) {
  auto services = LoadServices(flags.Get("data", ""));
  MACE_CHECK_OK(services.status());
  auto detector = core::MaceDetector::Load(flags.Get("model", "model.mace"));
  MACE_CHECK_OK(detector.status());
  const std::string out = flags.Get("out", "");
  for (size_t s = 0; s < services->size(); ++s) {
    auto scores =
        detector->Score(static_cast<int>(s), (*services)[s].test);
    MACE_CHECK_OK(scores.status());
    if (out.empty()) {
      double max_score = 0.0;
      for (double v : *scores) max_score = std::max(max_score, v);
      std::printf("%-16s %zu steps, max score %.4f\n",
                  (*services)[s].name.c_str(), scores->size(), max_score);
    } else {
      CsvTable table;
      table.columns = {"score"};
      for (double v : *scores) table.rows.push_back({v});
      const std::string path =
          out + "/" + (*services)[s].name + "_scores.csv";
      MACE_CHECK_OK(WriteCsvFile(path, table));
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}

int Eval(const Flags& flags) {
  auto services = LoadServices(flags.Get("data", ""));
  MACE_CHECK_OK(services.status());
  auto detector = core::MaceDetector::Load(flags.Get("model", "model.mace"));
  MACE_CHECK_OK(detector.status());
  const double risk = flags.GetDouble("risk", 0.02);
  std::printf("%-16s %8s %8s %8s %8s\n", "service", "bestF1", "AUROC",
              "AUPRC", "POT-F1");
  std::vector<eval::PrMetrics> all;
  for (size_t s = 0; s < services->size(); ++s) {
    const ts::ServiceData& svc = (*services)[s];
    auto scores = detector->Score(static_cast<int>(s), svc.test);
    MACE_CHECK_OK(scores.status());
    auto best = eval::BestF1Threshold(*scores, svc.test.labels());
    auto ranking = eval::ComputeRanking(*scores, svc.test.labels());
    auto pot = PotThreshold(*scores, risk, 0.9);
    MACE_CHECK_OK(best.status());
    const double auroc = ranking.ok() ? ranking->auroc : 0.0;
    const double auprc = ranking.ok() ? ranking->auprc : 0.0;
    const double pot_f1 =
        pot.ok() ? eval::EvaluateAtThreshold(*scores, svc.test.labels(),
                                             *pot)
                       .f1
                 : 0.0;
    all.push_back(best->metrics);
    std::printf("%-16s %8.3f %8.3f %8.3f %8.3f\n", svc.name.c_str(),
                best->metrics.f1, auroc, auprc, pot_f1);
  }
  const eval::PrMetrics avg = eval::MacroAverage(all);
  std::printf("%-16s %8.3f (P=%.3f R=%.3f)\n", "macro avg", avg.f1,
              avg.precision, avg.recall);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: mace_cli <synth|train|score|eval> --data <dir> "
               "[--model <file>] [--epochs N] [--out <dir>] ...\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (!flags.ok() || flags.Get("data", "").empty()) {
    Usage();
    return 2;
  }
  if (command == "synth") return Synth(flags);
  if (command == "train") return Train(flags);
  if (command == "score") return Score(flags);
  if (command == "eval") return Eval(flags);
  Usage();
  return 2;
}
